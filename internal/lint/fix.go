package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Suggested-fix construction and application. Fixes are deliberately
// narrow: dcflint -fix applies them blindly, so an analyzer attaches
// one only when the rewrite provably preserves behaviour, and returns
// nil for anything that needs human judgement.

// hotallocFix builds the mechanical rewrite for a closure literal
// passed to a scheduler's At/After. Two shapes qualify:
//
//   - a capture-free closure is hoisted to a package-level func and
//     passed by name (allocation-free, semantics identical);
//   - a closure over exactly one variable that the body never
//     reassigns or takes the address of becomes an AtArg/AfterArg
//     trampoline: the variable rides in the arg slot and is recovered
//     with a type assertion.
//
// Anything else — multiple captures, captured consts or local types,
// writes to the captured variable, types not nameable at package scope
// — returns nil and leaves the diagnostic fix-less.
func hotallocFix(pkg *Package, file *ast.File, call *ast.CallExpr, lit *ast.FuncLit) *SuggestedFix {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 || call.Args[1] != lit {
		return nil
	}
	name := sel.Sel.Name
	if name != "At" && name != "After" {
		return nil
	}
	named := namedRecvOf(pkg.Info, sel)
	if named == nil {
		return nil
	}

	captured, clean := capturedVars(pkg.Info, lit)
	if !clean || len(captured) > 1 {
		return nil
	}

	filename := pkg.Fset.Position(file.Pos()).Filename
	src, ok := pkg.Src[filename]
	if !ok {
		return nil
	}
	offset := func(pos token.Pos) int { return pkg.Fset.Position(pos).Offset }
	litPos := pkg.Fset.Position(lit.Pos())
	fnName := fmt.Sprintf("hoisted%d_%d", litPos.Line, litPos.Column)

	if len(captured) == 0 {
		// Hoist: the body references nothing from the enclosing
		// function, so it is already a package-level func in disguise.
		body := string(src[offset(lit.Body.Pos()):offset(lit.Body.End())])
		return &SuggestedFix{
			Message: fmt.Sprintf("hoist the capture-free closure to package-level func %s", fnName),
			Edits: []TextEdit{
				{Filename: filename, Start: offset(lit.Pos()), End: offset(lit.End()), NewText: fnName},
				{Filename: filename, Start: offset(file.End()), End: offset(file.End()),
					NewText: fmt.Sprintf("\n\nfunc %s() %s\n", fnName, body)},
			},
		}
	}

	// Single read-only capture: trampoline through AtArg/AfterArg.
	v := captured[0]
	qual, ok := fileQualifier(pkg, file)
	if !ok {
		return nil
	}
	if !nameable(v.Type(), pkg.Types) {
		return nil
	}
	timeType, ok := trampolineTimeType(named)
	if !ok || !nameable(timeType, pkg.Types) {
		return nil
	}
	vType := types.TypeString(v.Type(), qual)
	tType := types.TypeString(timeType, qual)
	if strings.Contains(vType, "invalid") || strings.Contains(tType, "invalid") {
		return nil
	}
	inner := string(src[offset(lit.Body.Lbrace)+1 : offset(lit.Body.Rbrace)])
	return &SuggestedFix{
		Message: fmt.Sprintf("rewrite to %sArg with package-level trampoline %s carrying %s", name, fnName, v.Name()),
		Edits: []TextEdit{
			{Filename: filename, Start: offset(sel.Sel.Pos()), End: offset(sel.Sel.End()), NewText: name + "Arg"},
			{Filename: filename, Start: offset(lit.Pos()), End: offset(lit.End()),
				NewText: fnName + ", " + v.Name()},
			{Filename: filename, Start: offset(file.End()), End: offset(file.End()),
				NewText: fmt.Sprintf("\n\nfunc %s(arg any, _ %s) {\n%s := arg.(%s)\n%s\n}\n",
					fnName, tType, v.Name(), vType, strings.TrimSpace(inner))},
		},
	}
}

// capturedVars returns the distinct variables the closure captures from
// its enclosing function, in first-use order. clean is false when the
// closure also captures something a trampoline cannot carry — a local
// const or type, or a variable the body writes or takes the address of.
func capturedVars(info *types.Info, lit *ast.FuncLit) (vars []*types.Var, clean bool) {
	inLit := func(pos token.Pos) bool { return pos >= lit.Pos() && pos < lit.End() }
	clean = true
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || obj.Pkg() == nil || !obj.Pos().IsValid() || inLit(obj.Pos()) {
			return true
		}
		// Package-scope objects are reachable from the hoisted func too.
		if obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		switch o := obj.(type) {
		case *types.Var:
			if o.IsField() {
				return true // fields are reached through their receiver
			}
			if !seen[o] {
				seen[o] = true
				vars = append(vars, o)
			}
		case *types.Const, *types.TypeName:
			clean = false
		}
		return true
	})
	if !clean {
		return nil, false
	}
	// The arg slot carries a copy: reject captures the body mutates or
	// aliases, where copying would change behaviour.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, isVar := info.Uses[id].(*types.Var); isVar && seen[v] {
						clean = false
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if v, isVar := info.Uses[id].(*types.Var); isVar && seen[v] {
					clean = false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, isVar := info.Uses[id].(*types.Var); isVar && seen[v] {
						clean = false
					}
				}
			}
		}
		return clean
	})
	return vars, clean
}

// trampolineTimeType extracts the sim-time parameter type from the
// scheduler's AtArg signature — the second parameter of its callback.
func trampolineTimeType(named *types.Named) (types.Type, bool) {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "AtArg" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() < 2 {
			return nil, false
		}
		cb, ok := sig.Params().At(1).Type().Underlying().(*types.Signature)
		if !ok || cb.Params().Len() != 2 {
			return nil, false
		}
		return cb.Params().At(1).Type(), true
	}
	return nil, false
}

// fileQualifier builds a types.Qualifier that renders package names the
// way this file imports them. ok is false only on malformed imports.
func fileQualifier(pkg *Package, file *ast.File) (types.Qualifier, bool) {
	names := make(map[string]string) // import path -> local name
	for _, spec := range file.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if spec.Name != nil {
			names[path] = spec.Name.Name
		} else {
			names[path] = pkgBase(path)
		}
	}
	return func(p *types.Package) string {
		if p == pkg.Types {
			return ""
		}
		if n, ok := names[p.Path()]; ok {
			return n
		}
		// Unimported package: render something invalid so nameable's
		// callers bail via the "invalid" substring check.
		return "invalid!"
	}, true
}

// nameable reports whether t can be written down at package scope of
// pkg: basic types, named types that are local or exported, and
// pointers/slices/signatures over such types.
func nameable(t types.Type, pkg *types.Package) bool {
	switch t := t.(type) {
	case *types.Basic:
		return t.Kind() != types.Invalid
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil { // error, any
			return true
		}
		return obj.Pkg() == pkg || obj.Exported()
	case *types.Pointer:
		return nameable(t.Elem(), pkg)
	case *types.Slice:
		return nameable(t.Elem(), pkg)
	case *types.Signature:
		if t.Recv() != nil || t.TypeParams() != nil {
			return false
		}
		for i := 0; i < t.Params().Len(); i++ {
			if !nameable(t.Params().At(i).Type(), pkg) {
				return false
			}
		}
		for i := 0; i < t.Results().Len(); i++ {
			if !nameable(t.Results().At(i).Type(), pkg) {
				return false
			}
		}
		return true
	case *types.Interface:
		return t.Empty()
	}
	return false
}

// ApplyFixes applies every suggested fix in diags to the sources of
// pkgs, returning gofmt-ed new file contents keyed by filename. Fixes
// whose edits overlap an earlier fix's edits are skipped (re-running
// dcflint -fix converges). Files without fixes are absent from the map.
func ApplyFixes(pkgs []*Package, diags []Diagnostic) (map[string][]byte, error) {
	src := make(map[string][]byte)
	fileAST := make(map[string]*ast.File)
	var fsetOf *token.FileSet
	for _, p := range pkgs {
		for name, b := range p.Src {
			src[name] = b
		}
		for _, f := range p.Files {
			fileAST[p.Fset.Position(f.Pos()).Filename] = f
			fsetOf = p.Fset
		}
	}

	type span struct{ start, end int }
	edits := make(map[string][]TextEdit)
	claimed := make(map[string][]span)
	needImport := make(map[string]map[string]bool)

	overlaps := func(file string, e TextEdit) bool {
		// Only replacement ranges are claimed; pure insertions at the
		// same point never conflict (both texts land, order by edit sort).
		for _, s := range claimed[file] {
			if e.Start < s.end && s.start < e.End {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		ok := true
		for _, e := range d.Fix.Edits {
			if _, have := src[e.Filename]; !have {
				ok = false
				break
			}
			if e.Start > e.End || overlaps(e.Filename, e) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, e := range d.Fix.Edits {
			edits[e.Filename] = append(edits[e.Filename], e)
			if e.Start < e.End {
				claimed[e.Filename] = append(claimed[e.Filename], span{e.Start, e.End})
			}
			for _, imp := range d.Fix.AddImports {
				if needImport[e.Filename] == nil {
					needImport[e.Filename] = make(map[string]bool)
				}
				needImport[e.Filename][imp] = true
			}
		}
	}

	out := make(map[string][]byte)
	for filename, es := range edits {
		// Import insertion rides as one more edit, right after the
		// package clause; gofmt tidies the layout.
		if f := fileAST[filename]; f != nil {
			have := make(map[string]bool)
			for _, spec := range f.Imports {
				have[strings.Trim(spec.Path.Value, `"`)] = true
			}
			var missing []string
			for imp := range needImport[filename] {
				if !have[imp] {
					missing = append(missing, imp)
				}
			}
			sort.Strings(missing)
			if len(missing) > 0 {
				at := fsetOf.Position(f.Name.End()).Offset
				var b strings.Builder
				for _, imp := range missing {
					fmt.Fprintf(&b, "\n\nimport %q", imp)
				}
				es = append(es, TextEdit{Filename: filename, Start: at, End: at, NewText: b.String()})
			}
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].Start != es[j].Start {
				return es[i].Start > es[j].Start
			}
			return es[i].End > es[j].End
		})
		buf := append([]byte(nil), src[filename]...)
		for _, e := range es {
			if e.End > len(buf) {
				return nil, fmt.Errorf("fix edit out of range in %s", filename)
			}
			buf = append(buf[:e.Start], append([]byte(e.NewText), buf[e.End:]...)...)
		}
		formatted, err := format.Source(buf)
		if err != nil {
			return nil, fmt.Errorf("fixed %s does not parse: %v", filename, err)
		}
		out[filename] = formatted
	}
	return out, nil
}
