package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	// Src holds the raw source of every file, keyed by the filename
	// recorded in Fset. The directive scanner and the test harness use it
	// to reason about comment placement on physical lines.
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
	// Imports lists the package's direct imports, and Exports maps
	// every import path go list resolved (targets and deps alike) to
	// its compiled export-data file. dcflint's content-hashed cache
	// derives package keys from these: a target's key folds in its
	// module deps' keys recursively and external deps' export data, so
	// an edit anywhere below a package invalidates it.
	Imports []string
	Exports map[string]string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists the given patterns with the go tool — compiling export data
// for every dependency — then parses and type-checks each matched
// package against that export data. It is a minimal offline stand-in for
// golang.org/x/tools/go/packages: the whole pipeline needs only the
// standard library plus the go command already on PATH.
//
// dir is the directory the go tool runs in (any directory inside the
// module); patterns are go list package patterns, e.g. "./..." or an
// explicit directory such as "./internal/lint/testdata/src/wallclock"
// (explicit paths reach inside testdata, which pattern expansion skips).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		targets = append(targets, lp)
	}

	fset := token.NewFileSet()
	// The gc importer reads compiler export data; the lookup hands it the
	// build-cache artifact go list -export just produced for each path.
	// ("unsafe" is special-cased by the importer and never hits lookup.)
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		p := &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Src:     make(map[string][]byte),
			Imports: lp.Imports,
			Exports: exports,
		}
		for _, name := range lp.GoFiles {
			full := filepath.Join(lp.Dir, name)
			src, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			p.Src[full] = src
			p.Files = append(p.Files, f)
		}
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, p.Files, p.Info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		p.Types = tpkg
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
