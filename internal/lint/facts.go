package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Interprocedural function summaries ("facts"), DESIGN.md §12.
//
// The original analyzers were per-function and syntactic: they caught
// `time.Now()` written in simulation code but not a call to a helper
// that hides the same read one frame down the stack. Facts close that
// gap. ComputeFacts walks every loaded package once, seeds each
// function with the properties it exhibits directly, records the
// intra-module call graph, and then propagates the properties bottom-up
// to a fixpoint, so `f calls g, g calls time.Now` marks f as touching
// the wall clock. Analyzers consult the table through Pass.Facts to
// flag one-level-indirect violations at the call site.
//
// Two design rules keep the table from poisoning clean code:
//
//   - A direct use suppressed by a //detlint:allow directive does NOT
//     seed a fact. The directive asserts the use is sanctioned (host
//     benchmarking, a wall-time watchdog), so functions calling the
//     sanctioned wrapper must not inherit a violation.
//   - Every propagated fact carries a human-readable witness chain
//     ("calls runGuarded, which reads the wall clock via time.AfterFunc
//     at guard.go:113") so a report at a call site names the root cause
//     instead of pointing at an innocent-looking identifier.
//
// Facts are keyed by (*types.Func).FullName(), which is stable and
// serializable, so cached analysis results keyed on package content
// hashes remain valid across processes.

// A Fact is one bottom-up function property.
type Fact uint8

const (
	// FactWallClock: the function (transitively) reads the host clock
	// via a banned time.* entry point.
	FactWallClock Fact = iota
	// FactGlobalRand: the function (transitively) draws from or mutates
	// the process-global math/rand source.
	FactGlobalRand
	// FactDrawsRNG: the function (transitively) draws randomness from
	// any source — the global math/rand or a deterministic internal/rng
	// stream. Unlike FactGlobalRand this is not a violation by itself;
	// it matters in order-sensitive contexts (map iteration).
	FactDrawsRNG
	// FactSchedules: the function (transitively) schedules events on a
	// duck-typed scheduler (a receiver with both At and AtArg).
	FactSchedules
	// FactMutatesShared: the function (transitively) writes
	// package-level state.
	FactMutatesShared

	numFacts
)

// FuncFacts is the summary of one function.
type FuncFacts struct {
	has     [numFacts]bool
	witness [numFacts]string
	// SchedParams lists the indices of parameters (receiver excluded)
	// the function forwards — directly or through other functions — into
	// a scheduler's callback slot. A closure literal passed at such a
	// position allocates on the scheduling hot path exactly like a
	// closure passed to At itself.
	SchedParams []int
	// SchedParamWitness describes where the forwarded parameter lands.
	SchedParamWitness string
}

// Has reports whether the fact is set. Nil-safe.
func (ff *FuncFacts) Has(f Fact) bool {
	return ff != nil && ff.has[f]
}

// Witness returns the witness chain for a set fact. Nil-safe.
func (ff *FuncFacts) Witness(f Fact) string {
	if ff == nil {
		return ""
	}
	return ff.witness[f]
}

// ForwardsToScheduler reports whether parameter index i (receiver
// excluded) reaches a scheduler callback slot. Nil-safe.
func (ff *FuncFacts) ForwardsToScheduler(i int) bool {
	if ff == nil {
		return false
	}
	for _, p := range ff.SchedParams {
		if p == i {
			return true
		}
	}
	return false
}

// Facts is the module-wide summary table.
type Facts struct {
	funcs map[string]*FuncFacts
}

// Of returns the summary for fn, or nil when fn's body was not among
// the loaded packages (stdlib, external, interface methods). Nil-safe.
func (fs *Facts) Of(fn *types.Func) *FuncFacts {
	if fs == nil || fn == nil {
		return nil
	}
	return fs.funcs[fn.FullName()]
}

// callEdge records one static call site inside a function.
type callEdge struct {
	callee string // FullName of the callee
	name   string // display name for witness chains
	pos    token.Position
	// argParams[i] = the caller's parameter index passed verbatim as the
	// callee's i-th argument, or -1. Drives SchedParams propagation.
	argParams []int
}

// funcNode is the per-function working state during computation.
type funcNode struct {
	key   string
	facts *FuncFacts
	calls []callEdge
	// schedParamSet mirrors facts.SchedParams for O(1) updates.
	schedParamSet map[int]bool
}

// ComputeFacts builds the summary table over every loaded package.
// Directives are honoured: an allow-suppressed direct use seeds
// nothing. The fixpoint is deterministic — functions are visited in
// sorted key order and call edges in source order, and a witness, once
// set, is never replaced.
func ComputeFacts(pkgs []*Package) *Facts {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	nodes := make(map[string]*funcNode)
	for _, pkg := range pkgs {
		allow, _ := parseDirectives(pkg, known)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{
					key:           obj.FullName(),
					facts:         &FuncFacts{},
					schedParamSet: make(map[int]bool),
				}
				seedFunc(pkg, fd, obj, allow, n)
				nodes[n.key] = n
			}
		}
	}

	propagate(nodes)

	fs := &Facts{funcs: make(map[string]*FuncFacts, len(nodes))}
	for k, n := range nodes {
		fs.funcs[k] = n.facts
	}
	return fs
}

// paramObjects returns the parameter variables of fd in declaration
// order (receiver excluded), for matching forwarded arguments.
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes: a package-level function, a method with a concrete receiver,
// or a local function referenced by name. Calls through interface
// values or function-typed variables return nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			// Interface dispatch has no body to summarise.
			if types.IsInterface(s.Recv()) {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// schedCallbackSlot returns the argument index of the callback in a
// scheduler entry point, or -1 when name is not one.
func schedCallbackSlot(name string) int {
	switch name {
	case "At", "After", "AtArg", "AfterArg":
		return 1
	case "AtKeyedArg":
		return 2
	}
	return -1
}

// seedFunc walks one function body, setting directly-exhibited facts
// (unless an allow directive sanctions the site) and recording call
// edges for propagation.
func seedFunc(pkg *Package, fd *ast.FuncDecl, obj *types.Func, allow allowIndex, n *funcNode) {
	info := pkg.Info
	params := paramObjects(info, fd)
	paramIndex := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		use := info.Uses[id]
		for i, p := range params {
			if use != nil && use == p {
				return i
			}
		}
		return -1
	}
	set := func(f Fact, pos token.Pos, witness string) {
		p := pkg.Fset.Position(pos)
		if f == FactWallClock || f == FactGlobalRand {
			if allow.allows(p.Filename, p.Line, Wallclock.Name) {
				return
			}
		}
		if !n.facts.has[f] {
			n.facts.has[f] = true
			n.facts.witness[f] = fmt.Sprintf("%s (%s:%d)", witness, shortFilename(p.Filename), p.Line)
		}
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SelectorExpr:
			if pkgPath, name, ok := pkgFuncOf(info, node); ok {
				if banned, ok := wallclockBanned[pkgPath]; ok {
					if _, ok := banned[name]; ok {
						if pkgPath == "time" {
							set(FactWallClock, node.Pos(), fmt.Sprintf("reads the wall clock via %s.%s", pkgBase(pkgPath), name))
						} else {
							set(FactGlobalRand, node.Pos(), fmt.Sprintf("draws from the %s global source via %s.%s", pkgPath, pkgBase(pkgPath), name))
							set(FactDrawsRNG, node.Pos(), fmt.Sprintf("draws from the %s global source via %s.%s", pkgPath, pkgBase(pkgPath), name))
						}
					}
				}
			}

		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if named := namedRecvOf(info, sel); named != nil {
					if p := named.Obj().Pkg(); p != nil && pkgBase(p.Path()) == "rng" {
						set(FactDrawsRNG, node.Pos(), fmt.Sprintf("draws from an rng stream via (%s).%s", named.Obj().Name(), sel.Sel.Name))
					}
					if slot := schedCallbackSlot(sel.Sel.Name); slot >= 0 &&
						hasMethod(named, "At") && hasMethod(named, "AtArg") {
						set(FactSchedules, node.Pos(), fmt.Sprintf("schedules events via (%s).%s", named.Obj().Name(), sel.Sel.Name))
						// Forwarding a parameter straight into the
						// callback slot makes this function a scheduling
						// trampoline for its caller.
						if slot < len(node.Args) {
							if i := paramIndex(node.Args[slot]); i >= 0 && !n.schedParamSet[i] {
								n.schedParamSet[i] = true
								p := pkg.Fset.Position(node.Pos())
								if n.facts.SchedParamWitness == "" {
									n.facts.SchedParamWitness = fmt.Sprintf("forwards it to (%s).%s (%s:%d)",
										named.Obj().Name(), sel.Sel.Name, shortFilename(p.Filename), p.Line)
								}
							}
						}
					}
				}
			}
			if callee := calleeOf(info, node); callee != nil && callee.FullName() != n.key {
				edge := callEdge{
					callee: callee.FullName(),
					name:   callee.Name(),
					pos:    pkg.Fset.Position(node.Pos()),
				}
				edge.argParams = make([]int, len(node.Args))
				for i, a := range node.Args {
					edge.argParams[i] = paramIndex(a)
				}
				n.calls = append(n.calls, edge)
			}

		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if isPackageLevelTarget(info, lhs) {
					set(FactMutatesShared, node.Pos(), fmt.Sprintf("writes package-level %q", rootIdent(lhs).Name))
				}
			}

		case *ast.IncDecStmt:
			if isPackageLevelTarget(info, node.X) {
				set(FactMutatesShared, node.Pos(), fmt.Sprintf("writes package-level %q", rootIdent(node.X).Name))
			}
		}
		return true
	})

	for i := range params {
		if n.schedParamSet[i] {
			n.facts.SchedParams = append(n.facts.SchedParams, i)
		}
	}
}

// propagate runs the bottom-up fixpoint: a caller inherits every fact
// of its statically-resolved callees, and a parameter passed verbatim
// into a callee's scheduler-forwarded position becomes
// scheduler-forwarded itself.
func propagate(nodes map[string]*funcNode) {
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			n := nodes[k]
			for _, e := range n.calls {
				callee, ok := nodes[e.callee]
				if !ok {
					continue
				}
				for f := Fact(0); f < numFacts; f++ {
					if callee.facts.has[f] && !n.facts.has[f] {
						n.facts.has[f] = true
						n.facts.witness[f] = fmt.Sprintf("calls %s, which %s", e.name, callee.facts.witness[f])
						changed = true
					}
				}
				for _, calleeParam := range callee.facts.SchedParams {
					if calleeParam >= len(e.argParams) {
						continue
					}
					if i := e.argParams[calleeParam]; i >= 0 && !n.schedParamSet[i] {
						n.schedParamSet[i] = true
						n.facts.SchedParams = append(n.facts.SchedParams, i)
						sort.Ints(n.facts.SchedParams)
						if n.facts.SchedParamWitness == "" {
							n.facts.SchedParamWitness = fmt.Sprintf("passes it to %s, which %s", e.name, callee.facts.SchedParamWitness)
						}
						changed = true
					}
				}
			}
		}
	}
}

// shortFilename trims a path to its final two elements, keeping witness
// chains readable without losing the package context.
func shortFilename(path string) string {
	slash := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			slash++
			if slash == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
