package lint

import (
	"go/ast"
)

// Hotalloc flags closure literals passed to the scheduler's hot-path
// At/After entry points wherever the allocation-free AtArg/AfterArg
// trampolines exist on the same type. PR 1's biggest win was removing
// per-event closure allocations from the MAC/medium hot paths; a casual
// `sched.After(d, func() { ... })` silently regresses it. The check is
// duck-typed: any receiver offering both At and AtArg (or After and
// AfterArg) is treated as a scheduler. Genuinely cold call sites —
// one-off setup scheduling — may carry a //detlint:allow hotalloc
// directive instead of contorting into the trampoline form.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag closures passed to scheduler At/After where AtArg/AfterArg trampolines exist",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "At" && name != "After" && name != "AtKeyedArg" {
				return true
			}
			named := namedRecvOf(info, sel)
			if named == nil {
				return true
			}
			if name == "AtKeyedArg" {
				// Already trampoline-shaped, but a closure in the fn slot
				// still allocates per call — and this is the sharded
				// medium's per-arrival hot path.
				if !hasMethod(named, "AtArg") {
					return true
				}
				for _, arg := range call.Args {
					if _, isClosure := arg.(*ast.FuncLit); isClosure {
						pass.Reportf(arg.Pos(), "closure literal passed to %s.AtKeyedArg allocates per call; pass a package-level trampoline func",
							named.Obj().Name())
					}
				}
				return true
			}
			if !hasMethod(named, name+"Arg") {
				return true
			}
			for _, arg := range call.Args {
				if _, isClosure := arg.(*ast.FuncLit); isClosure {
					pass.Reportf(arg.Pos(), "closure literal passed to %s.%s allocates per call; use %s.%sArg with a package-level func",
						named.Obj().Name(), name, named.Obj().Name(), name)
				}
			}
			return true
		})
	}
}
