package lint

import (
	"go/ast"
)

// Hotalloc flags closure literals passed to the scheduler's hot-path
// At/After entry points wherever the allocation-free AtArg/AfterArg
// trampolines exist on the same type. PR 1's biggest win was removing
// per-event closure allocations from the MAC/medium hot paths; a casual
// `sched.After(d, func() { ... })` silently regresses it. The check is
// duck-typed: any receiver offering both At and AtArg (or After and
// AfterArg) is treated as a scheduler. With facts available the check
// is also interprocedural: a closure handed to a helper that forwards
// its parameter into a scheduler callback slot allocates just the same,
// and is flagged at the hand-off. Genuinely cold call sites —
// one-off setup scheduling — may carry a //detlint:allow hotalloc
// directive instead of contorting into the trampoline form.
//
// The direct form carries a suggested fix where the rewrite is provably
// behaviour-preserving (see fix.go): a capture-free closure is hoisted
// to a package-level func, and a closure over a single read-only
// variable becomes an AtArg/AfterArg trampoline.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag closures passed to scheduler At/After (directly or through forwarding helpers) where AtArg/AfterArg trampolines exist",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				reportForwardedClosure(pass, call)
				return true
			}
			name := sel.Sel.Name
			named := namedRecvOf(info, sel)
			isSched := named != nil && hasMethod(named, "At") && hasMethod(named, "AtArg")
			if !isSched || schedCallbackSlot(name) < 0 {
				reportForwardedClosure(pass, call)
				return true
			}
			if name == "AtKeyedArg" {
				// Already trampoline-shaped, but a closure in the fn slot
				// still allocates per call — and this is the sharded
				// medium's per-arrival hot path.
				for _, arg := range call.Args {
					if _, isClosure := arg.(*ast.FuncLit); isClosure {
						pass.Reportf(arg.Pos(), "closure literal passed to %s.AtKeyedArg allocates per call; pass a package-level trampoline func",
							named.Obj().Name())
					}
				}
				return true
			}
			if !hasMethod(named, name+"Arg") {
				return true
			}
			for _, arg := range call.Args {
				if lit, isClosure := arg.(*ast.FuncLit); isClosure {
					pass.ReportfFix(arg.Pos(), hotallocFix(pass.Pkg, f, call, lit),
						"closure literal passed to %s.%s allocates per call; use %s.%sArg with a package-level func",
						named.Obj().Name(), name, named.Obj().Name(), name)
				}
			}
			return true
		})
	}
}

// reportForwardedClosure flags closure literals handed to functions
// whose summaries say the parameter lands in a scheduler callback slot.
func reportForwardedClosure(pass *Pass, call *ast.CallExpr) {
	callee := calleeOf(pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	ff := pass.Facts.Of(callee)
	if ff == nil || len(ff.SchedParams) == 0 {
		return
	}
	for i, arg := range call.Args {
		if _, isClosure := arg.(*ast.FuncLit); !isClosure {
			continue
		}
		if ff.ForwardsToScheduler(i) {
			pass.Reportf(arg.Pos(), "closure literal passed to %s allocates on the scheduling hot path: %s; pass a package-level func",
				callee.Name(), ff.SchedParamWitness)
		}
	}
}
