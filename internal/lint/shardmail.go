package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shardmail guards the sharded kernel's determinism invariant at its
// most fragile point: the cross-shard mailboxes. Boundary messages
// buffered during a window MUST be injected at the barrier in a fixed
// order — the medium keeps per-(src, dst) outbox slices and drains them
// by ascending shard index (medium.ExchangeShardMessages). Two shapes
// break that silently:
//
//   - declaring a mailbox as a map: Go randomises iteration order, so
//     any drain over it injects in a different order every run. The
//     keyed (when, key) total order masks most of the damage — until
//     two messages race for one pool slot or a panic's blame order
//     flips — so the bug would surface as a once-a-month flake;
//   - calling AtKeyedArg from inside any map iteration, which is the
//     same hazard without the naming hint.
//
// Mailboxes are recognised by name (outbox/inbox/mailbox/mailboxes in
// a field or variable identifier); the blessed shape is a slice indexed
// by shard. //detlint:allow shardmail opts out with a justification.
var Shardmail = &Analyzer{
	Name: "shardmail",
	Doc:  "flag map-typed cross-shard mailboxes and keyed event injection from map iteration",
	Run:  runShardmail,
}

func runShardmail(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				for _, name := range n.Names {
					if mailboxName(name.Name) && isMapType(info.TypeOf(n.Type)) {
						pass.Reportf(name.Pos(), "cross-shard mailbox %q is a map; drain order would be randomised — use a slice indexed by shard", name.Name)
					}
				}

			case *ast.AssignStmt:
				// Short variable declarations: `outbox := map[...]{...}`.
				for _, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !mailboxName(id.Name) || info.Defs[id] == nil {
						continue
					}
					if isMapType(info.TypeOf(lhs)) {
						pass.Reportf(id.Pos(), "cross-shard mailbox %q is a map; drain order would be randomised — use a slice indexed by shard", id.Name)
					}
				}

			case *ast.ValueSpec:
				for _, name := range n.Names {
					if mailboxName(name.Name) && isMapType(info.TypeOf(name)) {
						pass.Reportf(name.Pos(), "cross-shard mailbox %q is a map; drain order would be randomised — use a slice indexed by shard", name.Name)
					}
				}

			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "AtKeyedArg" {
						return true
					}
					if named := namedRecvOf(info, sel); named != nil && hasMethod(named, "AtKeyedArg") {
						pass.Reportf(call.Pos(), "AtKeyedArg inside map iteration injects events in randomised order; drain mailboxes via sorted slices (see medium.ExchangeShardMessages)")
					}
					return true
				})
			}
			return true
		})
	}
}

// mailboxName reports whether an identifier names a cross-shard
// message buffer by the codebase's conventions.
func mailboxName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "outbox") || strings.Contains(l, "inbox") || strings.Contains(l, "mailbox")
}

// isMapType reports whether t (possibly nil) is a map, or a slice or
// array of maps — a per-shard slice of map mailboxes is just as
// order-randomised when drained.
func isMapType(t types.Type) bool {
	for t != nil {
		switch u := t.Underlying().(type) {
		case *types.Map:
			return true
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}
