package lint_test

import (
	"testing"

	"dcfguard/internal/lint"
	"dcfguard/internal/lint/linttest"
)

func TestWallclock(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/wallclock", lint.Wallclock)
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/maporder", lint.Maporder)
}

func TestFloateq(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/floateq", lint.Floateq)
}

func TestHotalloc(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/hotalloc", lint.Hotalloc)
}

func TestEventalloc(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/eventalloc", lint.Eventalloc)
}

func TestObshot(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/obshot", lint.Obshot)
}

func TestShardmail(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/shardmail", lint.Shardmail)
}

// TestDirectives drives every analyzer at once over the directive
// corpus: placement on the wrong line, unknown analyzer names, unknown
// verbs, and stacked/multi-name directives.
func TestDirectives(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/directive", lint.All()...)
}

// TestAllowPackage drives every analyzer over the allow-package corpus:
// a package-wide justified wallclock carve-out spanning both files,
// with every other analyzer still armed.
func TestAllowPackage(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/allowpkg", lint.All()...)
}

// TestStubsAreClean pins that the shared stub packages themselves
// produce no diagnostics, so their findings can never bleed into the
// corpora that import them.
func TestStubsAreClean(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/sim", lint.All()...)
	linttest.Run(t, "./internal/lint/testdata/src/rng", lint.All()...)
}

func TestByName(t *testing.T) {
	if got := lint.ByName("wallclock", "floateq"); len(got) != 2 {
		t.Fatalf("ByName(wallclock, floateq) = %v analyzers, want 2", len(got))
	}
	if got := lint.ByName("wallclock", "nope"); got != nil {
		t.Fatalf("ByName with unknown name = %v, want nil", got)
	}
}
