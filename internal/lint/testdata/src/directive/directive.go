// Exercises for the //detlint:allow directive parser: placement rules,
// stacking, and rejection of malformed directives.
package directive

import (
	"fmt"
	"time"
)

func trailing(m map[string]int) {
	for k := range m { //detlint:allow maporder -- trailing form covers its own line
		fmt.Println(k)
	}
}

func standalone(m map[string]int) {
	//detlint:allow maporder -- standalone form covers the next line
	for k := range m {
		fmt.Println(k)
	}
}

// Stacked standalone directives all cover the first non-directive line.
func stacked(x float64, deadline time.Time) bool {
	//detlint:allow floateq
	//detlint:allow wallclock
	return x == 0 && time.Now().Before(deadline)
}

// One directive may carry several analyzer names.
func multiName(x float64, deadline time.Time) bool {
	//detlint:allow floateq wallclock -- both violations live on the next line
	return x == 0 && time.Now().Before(deadline)
}

// A blank line between directive and target breaks the association: the
// directive covers the blank line, and the violation is still reported.
func wrongLine(m map[string]int) {
	//detlint:allow maporder -- ineffective: not adjacent to the loop

	for k := range m { // want `map iteration emits output`
		fmt.Println(k)
	}
}

// Allowing a different analyzer does not suppress this one's finding.
func wrongName(m map[string]int) {
	for k := range m { //detlint:allow floateq // want `map iteration emits output`
		fmt.Println(k)
	}
}

func unknownName(m map[string]int) {
	//detlint:allow maporderr // want `unknown analyzer "maporderr"`
	for k := range m { // want `map iteration emits output`
		fmt.Println(k)
	}
}

func missingName(m map[string]int) {
	for k := range m { //detlint:allow // want `missing analyzer name` `map iteration emits output`
		fmt.Println(k)
	}
}

func unknownVerb(m map[string]int) {
	for k := range m { //detlint:ignore maporder // want `unknown detlint directive` `map iteration emits output`
		fmt.Println(k)
	}
}

// allow-package requires a justification: without one the directive is
// rejected (and therefore suppresses nothing, so the violation below is
// still reported).
func barePackageDirective(deadline time.Time) bool {
	//detlint:allow-package wallclock // want `missing -- justification`
	return time.Now().Before(deadline) // want `reads the wall clock`
}

// Unknown analyzer names are rejected in allow-package form too.
func unknownPackageName(m map[string]int) {
	//detlint:allow-package maporderr -- typo'd name // want `unknown analyzer "maporderr"`
	for k := range m { // want `map iteration emits output`
		fmt.Println(k)
	}
}
