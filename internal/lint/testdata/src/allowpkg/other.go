package allowpkg

import "time"

// The directive in allowpkg.go covers this file too: package scope
// means the package, not the file carrying the comment.
func nap() {
	time.Sleep(time.Millisecond)
}
