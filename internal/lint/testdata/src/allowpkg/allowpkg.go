// Exercises the //detlint:allow-package directive: a package-wide,
// justified suppression of one analyzer that must span every file of
// the package while leaving every other analyzer armed.
package allowpkg

//detlint:allow-package wallclock -- corpus stand-in for a daemon package whose domain is host timers

import (
	"fmt"
	"time"
)

// Direct banned uses anywhere in this file are sanctioned package-wide.
func deadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

func arm(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f)
}

// Other analyzers are not covered by the wallclock carve-out.
func leak(m map[string]int) {
	for k := range m { // want `map iteration emits output`
		fmt.Println(k)
	}
}
