// Seeded violations for the rngstream analyzer.
package rngstream

import (
	"dcfguard/internal/lint/testdata/src/rng"
	"dcfguard/internal/lint/testdata/src/sim"
)

// Hand-rolling the splitmix64 finalizer forks the key derivation from
// the canonical rng.Mix64 helpers: the constants must not leak out of
// internal/rng.
func mixByHand(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15                  // want `splitmix64 constant 0x9e3779b97f4a7c15 builds a counter-RNG key outside internal/rng`
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9 // want `splitmix64 constant 0xbf58476d1ce4e5b9 builds a counter-RNG key outside internal/rng`
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb // want `splitmix64 constant 0x94d049bb133111eb builds a counter-RNG key outside internal/rng`
	return x ^ (x >> 31)
}

// Deriving streams inside a map-range body consumes derivations in the
// randomised iteration order.
func deriveAll(src *rng.Source, nodes map[uint64]int) map[uint64]*rng.Source {
	out := make(map[uint64]*rng.Source, len(nodes))
	for id := range nodes {
		out[id] = src.Stream(id) // want `Stream derives an rng stream inside a map-range body`
	}
	return out
}

// Deriving inside a scheduled event handler re-derives per event on the
// hot path.
func arm(src *rng.Source, s *sim.Scheduler, at sim.Time) {
	s.At(at, func() {
		_ = src.StreamN(9, 2) // want `StreamN derives an rng stream inside a scheduled event handler`
	})
}

// The blessed pattern: derive once at setup, from deterministic order.
func deriveSorted(src *rng.Source, ids []uint64) []*rng.Source {
	out := make([]*rng.Source, 0, len(ids))
	for _, id := range ids {
		out = append(out, src.Stream(id))
	}
	return out
}

// A named handler declared at package level is its own FuncDecl: the
// analyzer does not see through the indirection, and the direct-context
// rule correctly stays silent for setup-time derivation inside it.
func setupNode(src *rng.Source, id uint64) *rng.Source {
	return src.Stream(id)
}

// A non-RNG use of the constant (a golden-ratio bucket hash) may opt
// out with its justification.
func spread(x uint64) uint64 {
	return x * 0x9e3779b97f4a7c15 //detlint:allow rngstream -- golden-ratio bucket hash, not a counter-RNG key derivation
}
