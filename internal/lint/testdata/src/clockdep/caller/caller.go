// Package caller reads the wall clock only transitively, through the
// helper package. No time.* selector appears in this file, so the
// intraprocedural wallclock analyzer reports nothing here; with facts
// computed over helper, both call sites are flagged.
package caller

import "dcfguard/internal/lint/testdata/src/clockdep/helper"

type frame struct{ began int64 }

func (f *frame) begin() {
	f.began = helper.Stamp()
}

func (f *frame) age() int64 {
	return helper.Elapsed(f.began)
}
