// Package helper hides a wall-clock read behind innocent-looking
// functions. The caller corpus next door exercises the interprocedural
// wallclock rule against it: nothing in caller mentions time.*, so the
// v1 analyzer was provably blind there (TestWallclockIndirect pins
// both the old blindness and the new catch).
package helper

import "time"

// Stamp reads the host clock directly; flagged when this package is in
// the analysis scope.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed launders the read through one more frame.
func Elapsed(since int64) int64 {
	return Stamp() - since
}
