// Seeded violations for the wallclock analyzer.
package wallclock

import (
	"math/rand"
	"time"
)

// Wall-clock reads are forbidden in simulation code.
func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func nap() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// Referencing the function without calling it is just as nondeterministic.
var clock = time.Now // want `time\.Now reads the wall clock`

// The global math/rand source is banned...
func jitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the math/rand global source`
}

func backoff(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the math/rand global source`
}

// ...but a private, explicitly seeded source is not (merely discouraged
// in favour of internal/rng streams).
func seeded() float64 {
	return rand.New(rand.NewSource(1)).Float64()
}

// time.Duration and time.Time as plain data types are fine.
func double(d time.Duration) time.Duration { return 2 * d }

// A justified cold-path exemption is honoured.
func progress() time.Time {
	return time.Now() //detlint:allow wallclock -- CLI progress message, outside the simulation
}
