// Seeded violations for the shardmail analyzer.
package shardmail

import "dcfguard/internal/lint/testdata/src/sim"

type msg struct {
	when sim.Time
	key  uint64
}

// Map-typed mailboxes randomise drain order: struct fields...
type shard struct {
	outbox map[int][]*msg // want `cross-shard mailbox "outbox" is a map`
	inbox  map[int]*msg   // want `cross-shard mailbox "inbox" is a map`
	// A slice of maps is just as order-randomised when drained.
	mailboxes []map[int]*msg // want `cross-shard mailbox "mailboxes" is a map`
}

// ...package-level variables...
var globalOutbox map[string][]*msg // want `cross-shard mailbox "globalOutbox" is a map`

// ...and short variable declarations.
func buildMailbox() {
	outbox := make(map[int][]*msg) // want `cross-shard mailbox "outbox" is a map`
	_ = outbox
}

// The blessed shape: per-(src, dst) slices indexed by shard.
type goodShard struct {
	outbox [][]*msg
}

func (s *goodShard) buffered() int { return len(s.outbox) }

// Injecting keyed events from inside a map iteration is the same
// hazard without the naming hint.
func onArrival(arg any, when sim.Time) {}

func drainWrong(sched *sim.Scheduler, pending map[uint64]*msg) {
	for _, m := range pending {
		sched.AtKeyedArg(m.when, m.key, onArrival, m) // want `AtKeyedArg inside map iteration injects events in randomised order`
	}
}

// Slice drains are deterministic: no report.
func drainRight(sched *sim.Scheduler, pending []*msg) {
	for _, m := range pending {
		sched.AtKeyedArg(m.when, m.key, onArrival, m)
	}
}

// Opting out requires a justification.
type auditedShard struct {
	outbox map[int][]*msg //detlint:allow shardmail -- debug-only mirror, drained through sortedKeys
}
