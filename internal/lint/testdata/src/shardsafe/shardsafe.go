// Seeded violations for the shardsafe analyzer.
package shardsafe

import "dcfguard/internal/lint/testdata/src/sim"

type node struct {
	sched *sim.Scheduler
	nav   sim.Time
}

type mesh struct {
	scheds []*sim.Scheduler
	nodes  []node
}

func noop() {}

// Scheduling on a scheduler indexed out of the shard slice from worker
// context schedules onto a goroutine that is concurrently running it.
func (m *mesh) relay(i int, at sim.Time) {
	m.scheds[i].At(at, noop) // want `At on a scheduler indexed out of a shard slice`
}

// The one-hop local form is the same race with a temporary name.
func (m *mesh) relayVia(i int, at sim.Time) {
	s := m.scheds[i]
	s.At(at, noop) // want `At on "s", which was indexed out of a shard slice`
}

// Writing a field of an indexed element of a scheduler-bearing slice
// mutates (potentially) another shard's state block.
func (m *mesh) poke(i int, t sim.Time) {
	m.nodes[i].nav = t // want `write to field "nav" of an indexed element of a scheduler-bearing slice`
}

func (m *mesh) bump(i int) {
	m.nodes[i].nav++ // want `write to field "nav" of an indexed element of a scheduler-bearing slice`
}

// Exchange functions run inside the barrier with every worker parked:
// cross-shard fan-out is their whole job.
func (m *mesh) ExchangeShardMessages(at sim.Time) {
	for i := range m.scheds {
		m.scheds[i].At(at, noop)
		m.nodes[i].nav = at
	}
}

// Configure functions run before any worker goroutine exists.
func (m *mesh) ConfigureShards(at sim.Time) {
	for i := range m.nodes {
		m.nodes[i].nav = at
	}
}

// Receiving a scheduler as a parameter is fine: the caller asserted
// ownership by passing it.
func drive(s *sim.Scheduler, at sim.Time) {
	s.At(at, noop)
}

// A slice whose element struct carries no scheduler is ordinary data,
// not shard state.
type row struct{ total int }

func tally(rows []row, i, v int) {
	rows[i].total = v
}

// A justified exemption is honoured.
func (m *mesh) selfSchedule(self int, at sim.Time) {
	m.scheds[self].At(at, noop) //detlint:allow shardsafe -- self is this worker's own shard index by construction
}
