// Seeded violations for the floateq analyzer.
package floateq

type state struct {
	power float64
	idx   int
}

type intState struct {
	count int
	id    uint32
}

func equalPower(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func changed(prev, cur float32) bool {
	return prev != cur // want `floating-point != comparison`
}

// Zero sentinels are still knife-edge decisions.
func idle(backoff float64) bool {
	return backoff == 0 // want `floating-point == comparison`
}

// The classic NaN self-test is equality too; use math.IsNaN.
func isNaN(x float64) bool {
	return x != x // want `floating-point != comparison`
}

// Struct equality reaching a float field compares floats.
func sameState(a, b state) bool {
	return a == b // want `floating-point == comparison`
}

// Array equality over floats likewise.
func sameRow(a, b [4]float64) bool {
	return a == b // want `floating-point == comparison`
}

// Integer comparisons are exact: no finding.
func sameInt(a, b intState) bool { return a == b }

func done(n int) bool { return n == 0 }

// Ordering tests on floats are the sanctioned alternative.
func below(x, limit float64) bool { return x < limit }

// A fully constant comparison folds at compile time: no finding.
const epsilonOK = (1.0 / 3) != 0.3333333333333333

// A justified exemption is honoured (e.g. comparing against a value
// copied bit-for-bit from the same computation).
func unchangedExact(prev, cur float64) bool {
	return prev == cur //detlint:allow floateq -- cur is a bit-identical copy of prev, not recomputed
}
