// Seeded violations for the atomicmix analyzer.
package atomicmix

import "sync/atomic"

type counter struct {
	n    uint64
	done uint32
}

// The sanctioned discipline: every access goes through sync/atomic.
func (c *counter) add() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) load() uint64 {
	return atomic.LoadUint64(&c.n)
}

// A plain read of the same field races the atomic writer and can see a
// stale value forever on weakly-ordered hardware.
func (c *counter) snapshot() uint64 {
	return c.n // want `"n" is accessed via atomic.AddUint64 elsewhere but with a plain load/store here`
}

// A plain store is the write half of the same race.
func (c *counter) clear() {
	c.n = 0 // want `"n" is accessed via atomic.AddUint64 elsewhere but with a plain load/store here`
}

// Mixing on a package-level variable is flagged the same way.
var hits uint64

func recordHit() {
	atomic.AddUint64(&hits, 1)
}

func resetHits() {
	hits = 0 // want `"hits" is accessed via atomic.AddUint64 elsewhere but with a plain load/store here`
}

// Pre-spawn initialisation that provably happens before any goroutine
// exists may opt out with its safety argument.
func (c *counter) init() {
	c.done = 0 //detlint:allow atomicmix -- runs in the constructor, before any goroutine is spawned
	atomic.StoreUint32(&c.done, 0)
}

// The typed wrappers make plain access unrepresentable: never flagged.
type gauge struct{ v atomic.Uint64 }

func (g *gauge) bump() { g.v.Add(1) }

func (g *gauge) read() uint64 { return g.v.Load() }

// A field never touched by sync/atomic is ordinary state.
type plain struct{ total int }

func (p *plain) accumulate(v int) { p.total += v }
