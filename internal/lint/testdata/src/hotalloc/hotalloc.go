// Seeded violations for the hotalloc analyzer.
package hotalloc

import "dcfguard/internal/lint/testdata/src/sim"

type node struct {
	sched *sim.Scheduler
	nav   sim.Time
}

// A closure literal on the hot-path entry points allocates per call.
func (n *node) armTimeout(at sim.Time) {
	n.sched.At(at, func() { n.nav = at }) // want `closure literal passed to Scheduler\.At allocates per call`
}

func (n *node) armDelay(d sim.Time) {
	n.sched.After(d, func() { n.nav += d }) // want `closure literal passed to Scheduler\.After allocates per call`
}

// The trampoline form is the fix: package-level func plus an argument.
func fireTimeout(arg any, when sim.Time) { arg.(*node).nav = when }

func (n *node) armTimeoutFast(at sim.Time) {
	n.sched.AtArg(at, fireTimeout, n)
}

// Passing a named function (no capture) to At is allocation-free too.
func noop() {}

func (n *node) armNoop(at sim.Time) {
	n.sched.At(at, noop)
}

// A type without the trampolines is not a scheduler hot path: closures
// to it are legal.
func plain(p *sim.PlainTimer, at sim.Time) {
	p.At(at, func() {})
}

// Cold one-off setup may opt out with a justification.
func (n *node) armOnce(at sim.Time) {
	n.sched.At(at, func() { n.nav = 0 }) //detlint:allow hotalloc -- runs once at scenario setup, never per frame
}

// A closure in AtKeyedArg's fn slot allocates per call too — it is the
// sharded medium's per-arrival hot path.
func (n *node) armKeyed(at sim.Time) {
	n.sched.AtKeyedArg(at, 7, func(arg any, when sim.Time) { n.nav = when }, n) // want `closure literal passed to Scheduler\.AtKeyedArg allocates per call`
}

// The package-level trampoline form stays silent.
func (n *node) armKeyedFast(at sim.Time) {
	n.sched.AtKeyedArg(at, 7, fireTimeout, n)
}

// --- interprocedural: forwarding helpers ---

// armVia forwards fn into the scheduler callback slot; a closure handed
// to it allocates exactly like one handed to At directly.
func armVia(s *sim.Scheduler, at sim.Time, fn func()) {
	s.At(at, fn)
}

// armDeep forwards through two frames.
func armDeep(s *sim.Scheduler, at sim.Time, fn func()) {
	armVia(s, at, fn)
}

func (n *node) armIndirect(at sim.Time) {
	armVia(n.sched, at, func() { n.nav = at }) // want `closure literal passed to armVia allocates on the scheduling hot path`
}

func (n *node) armIndirectDeep(at sim.Time) {
	armDeep(n.sched, at, func() { n.nav = at }) // want `closure literal passed to armDeep allocates on the scheduling hot path`
}

// A named func through the forwarder allocates nothing: stays silent.
func (n *node) armIndirectFast(at sim.Time) {
	armVia(n.sched, at, noop)
}
