// Seeded violations for the eventalloc analyzer.
package eventalloc

import "dcfguard/internal/lint/testdata/src/sim"

// Boxing a record with a composite literal bypasses the slab free list
// and hands out a pointer that dangles when the slab grows.
func box() *sim.Event {
	return &sim.Event{} // want `&Event\{\} boxes a scheduler event record outside the slab`
}

// new(Event) is the same bug in builtin clothing.
func viaNew() *sim.Event {
	return new(sim.Event) // want `new\(Event\) boxes a scheduler event record outside the slab`
}

// Value literals are legal: the slab allocator itself grows with
// `append(slab, Event{})`.
func value() sim.Event {
	return sim.Event{}
}

// A type named Event from a package without a slab scheduler is not a
// kernel record; boxing it is fine.
type Event struct{ n int }

func other() *Event {
	return &Event{n: 1}
}

// new over the local type is equally fine.
func otherNew() *Event {
	return new(Event)
}

// Test fixtures may opt out with a justification.
func fixture() *sim.Event {
	return &sim.Event{} //detlint:allow eventalloc -- fixture record, never scheduled
}
