// Package sim is a stub scheduler for analyzer tests: it mirrors the
// real internal/sim surface the analyzers duck-type against (At/After
// plus the AtArg/AfterArg trampolines), with no behaviour.
package sim

type Time int64

type EventRef struct{}

type Scheduler struct{}

func (s *Scheduler) Now() Time { return 0 }

func (s *Scheduler) At(when Time, fn func()) EventRef { return EventRef{} }

func (s *Scheduler) AtArg(when Time, fn func(arg any, when Time), arg any) EventRef {
	return EventRef{}
}

func (s *Scheduler) After(d Time, fn func()) EventRef { return EventRef{} }

func (s *Scheduler) AfterArg(d Time, fn func(arg any, when Time), arg any) EventRef {
	return EventRef{}
}

// PlainTimer has At but no AtArg trampoline: closures passed to it are
// legal, which pins that hotalloc only fires where a trampoline exists.
type PlainTimer struct{}

func (p *PlainTimer) At(when Time, fn func()) {}

// Event mirrors the real slab record type, so the eventalloc corpus
// can box it. The slab's own value-literal append (`Event{}`) is the
// sanctioned allocation and stays unflagged.
type Event struct {
	when Time
	next uint32
}

// AtKeyedArg mirrors the keyed-scheduling entry point the shardmail
// and hotalloc corpora exercise.
func (s *Scheduler) AtKeyedArg(when Time, key uint64, fn func(arg any, when Time), arg any) EventRef {
	return EventRef{}
}
