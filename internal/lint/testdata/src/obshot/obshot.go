// Seeded violations for the obshot analyzer.
package obshot

// Handle types returned by the registry lookups.
type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }

type Histogram struct{ n uint64 }

func (h *Histogram) Observe(float64) { h.n++ }

// Registry duck-types as a metrics registry: it offers all three
// lookup-or-register methods, like obs.Registry.
type Registry struct{}

func (r *Registry) Counter(scope string, node int, name string) *Counter { return &Counter{} }
func (r *Registry) Gauge(scope string, node int, name string) *Gauge     { return &Gauge{} }
func (r *Registry) Histogram(scope string, node int, name string, bounds []float64) *Histogram {
	return &Histogram{}
}

type node struct {
	reg     *Registry
	success *Counter
	queue   *Gauge
}

// Attach-time resolution is the sanctioned pattern: look the handles up
// once in Instrument (or a New* constructor) and store them.
func (n *node) Instrument(reg *Registry) {
	n.reg = reg
	n.success = reg.Counter("mac", 0, "tx_success")
	n.queue = reg.Gauge("mac", 0, "queue_len")
}

func NewNode(reg *Registry) *node {
	return &node{reg: reg, success: reg.Counter("mac", 0, "tx_success")}
}

var defaultHist = new(Registry).Histogram("mac", -1, "attempts", nil) //detlint:allow obshot -- package-level default, resolved once at init

// A lookup inside an event handler re-pays the registry mutex + map walk
// on every simulated event.
func (n *node) onAck() {
	n.reg.Counter("mac", 0, "tx_success").Inc() // want `Registry\.Counter handle lookup by name outside attach time`
}

func (n *node) onSample(depth int) {
	n.reg.Gauge("mac", 0, "queue_len").Set(float64(depth)) // want `Registry\.Gauge handle lookup by name outside attach time`
	n.reg.Histogram("mac", 0, "attempts", nil).Observe(1)  // want `Registry\.Histogram handle lookup by name outside attach time`
	n.success.Inc()                                        // resolved handle: fine
}

// A closure defers execution past attach time, even when it is built
// inside an Instrument method.
func (n *node) InstrumentLazy(reg *Registry) func() {
	return func() {
		reg.Counter("mac", 0, "drops").Inc() // want `Registry\.Counter handle lookup by name outside attach time`
	}
}

// A type with only some of the three methods is not a registry; calling
// its Counter anywhere is legal.
type counterOnly struct{}

func (counterOnly) Counter(name string) int { return 0 }

func tally(c counterOnly) int { return c.Counter("x") }

// Cold paths may opt out with a justification.
func (n *node) debugDump(reg *Registry) {
	reg.Counter("mac", 0, "dump_requests").Inc() //detlint:allow obshot -- on-demand debug dump, never on the event path
}

// A method value defers the by-name lookup to every future invocation:
// it is flagged even inside attach-time functions, where a direct call
// would be legal.
func NewLazyNode(reg *Registry) func(string, int, string) *Counter {
	return reg.Counter // want `Registry\.Counter captured as a method value`
}

// Per-shard telemetry shape: fanning a lookup method out to worker
// callbacks re-pays the registry walk on every window. Resolve one
// handle per shard up front instead.
func InstrumentShards(reg *Registry, nShards int) []func(float64) {
	var fns []func(float64)
	lookup := reg.Gauge // want `Registry\.Gauge captured as a method value`
	for i := 0; i < nShards; i++ {
		shard := i
		fns = append(fns, func(v float64) {
			lookup("shard", shard, "queue_depth").Set(v)
		})
	}
	return fns
}

// The right shape: handles resolved once at attach time, closures
// capture the handles, not the registry.
func InstrumentShardsResolved(reg *Registry, nShards int) []func(float64) {
	var fns []func(float64)
	for i := 0; i < nShards; i++ {
		g := reg.Gauge("shard", i, "queue_depth")
		fns = append(fns, func(v float64) { g.Set(v) })
	}
	return fns
}

// A resolved handle's method value is fine: the lookup already happened.
func (n *node) successFn() func() { return n.success.Inc }
