// Corpus for the -fix pipeline: every finding here carries a suggested
// fix, and TestApplyFixes pins that the fixed output compiles and
// re-lints clean. No want comments — the fix test drives the analyzers
// directly.
package fixes

import "dcfguard/internal/lint/testdata/src/sim"

type node struct {
	sched *sim.Scheduler
	nav   sim.Time
}

// Extraction loop that never sorts: fixed by inserting slices.Sort.
func ids(m map[uint64]int) []uint64 {
	var out []uint64
	for id := range m {
		out = append(out, id)
	}
	return out
}

// Capture-free closure: fixed by hoisting to a package-level func.
var armed int

func (n *node) armBare(at sim.Time) {
	n.sched.At(at, func() { armed++ })
}

// Single read-only capture: fixed by the AtArg trampoline rewrite.
func (n *node) armDeadline(deadline sim.Time) {
	n.sched.After(deadline, func() { consume(deadline) })
}

func consume(t sim.Time) { _ = t }
