// Seeded violations for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"dcfguard/internal/lint/testdata/src/rng"
	"dcfguard/internal/lint/testdata/src/sim"
)

var registry = map[string]int{}

// The blessed pattern: extract keys, sort, iterate sorted. No finding.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator also counts as sorting the extraction.
func sortedByValue(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m[keys[i]] < m[keys[j]] })
	return keys
}

// Fields of the range variables are still pure extraction, and a local
// sort-named helper counts as sorting.
type pairKey struct{ sender, receiver int }

type registryT struct{ pairs []pairKey }

func (r *registryT) pairList(m map[pairKey]int) []pairKey {
	r.pairs = r.pairs[:0]
	for k := range m {
		r.pairs = append(r.pairs, pairKey{k.sender, k.receiver})
	}
	sortPairs(r.pairs)
	return r.pairs
}

func sortPairs(ps []pairKey) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].sender < ps[j].sender })
}

// Extraction into a struct field without any sort still leaks.
func (r *registryT) unsortedPairList(m map[pairKey]int) []pairKey {
	r.pairs = r.pairs[:0]
	for k := range m { // want `map keys are extracted into "pairs" but never sorted`
		r.pairs = append(r.pairs, pairKey{sender: k.sender, receiver: k.receiver})
	}
	return r.pairs
}

// Extraction that never reaches a sort leaks map order into the slice.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map keys are extracted into "keys" but never sorted`
		keys = append(keys, k)
	}
	return keys
}

// Appending anything beyond the range variables is a real loop body, and
// the append makes iteration order observable.
func appendPairs(m map[string]int, prefix string) []string {
	var rows []string
	for k, v := range m { // want `map iteration appends to a slice`
		rows = append(rows, fmt.Sprintf("%s%s=%d", prefix, k, v))
	}
	return rows
}

// Emitting output while iterating writes rows in random order.
func dump(m map[string]int) {
	for k, v := range m { // want `map iteration emits output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func render(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration emits output`
		b.WriteString(k)
	}
	return b.String()
}

// Drawing from an RNG inside the loop perturbs the stream order.
func sample(m map[string]int, src *rng.Source) int {
	total := 0
	for range m { // want `map iteration draws from an RNG`
		total += src.Intn(10)
	}
	return total
}

// Scheduling events inside the loop randomises event sequence numbers.
func schedule(m map[string]sim.Time, s *sim.Scheduler, fn func(arg any, when sim.Time)) {
	for _, when := range m { // want `map iteration schedules events`
		s.AtArg(when, fn, nil)
	}
}

// Floating-point accumulation is order-sensitive in the last ulp.
func mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration accumulates floating-point state`
		sum += v
	}
	return sum / float64(len(m))
}

// Integer accumulation commutes exactly: no finding.
func count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Writing through keys into another map is order-independent: no finding.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Package-level state mutated under random order is flagged.
func promote(m map[string]int) {
	for k, v := range m { // want `map iteration writes package-level state`
		registry[k] = v
	}
}

// Sends interleave with the receiver in map order.
func stream(m map[string]int, ch chan<- string) {
	for k := range m { // want `map iteration sends on a channel`
		ch <- k
	}
}

// A justified exemption is honoured.
func debugDump(m map[string]int) {
	//detlint:allow maporder -- debug-only output, never diffed or golden-checked
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// --- interprocedural: order sensitivity laundered through helpers ---

func draw(src *rng.Source) int { return src.Intn(3) }

func sampleVia(m map[string]int, src *rng.Source) int {
	total := 0
	for range m { // want `map iteration calls draw, which draws from an rng stream`
		total += draw(src)
	}
	return total
}

func bumpRegistry(k string, v int) { registry[k] = v }

func promoteVia(m map[string]int) {
	for k, v := range m { // want `map iteration calls bumpRegistry, which writes package-level "registry"`
		bumpRegistry(k, v)
	}
}
