// Package rng is a stub deterministic generator for analyzer tests: the
// maporder analyzer recognises RNG draws by the receiver's package name.
package rng

type Source struct{ state uint64 }

func New(seed uint64) *Source { return &Source{state: seed} }

func (s *Source) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}

func (s *Source) Float64() float64 { return float64(s.Uint64()>>11) / (1 << 53) }

func (s *Source) Intn(n int) int { return int(s.Uint64() % uint64(n)) }

// Stream and StreamN mirror the real stream-derivation entry points the
// rngstream analyzer recognises by name on rng-package receivers.
func (s *Source) Stream(key uint64) *Source { return New(s.state ^ key) }

func (s *Source) StreamN(key, n uint64) *Source { return New(s.state ^ key ^ n) }
