package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shardsafe guards the sharded kernel's ownership discipline
// (DESIGN.md §11–12). Between barriers, each shard goroutine may touch
// only its own scheduler and the state of nodes it owns; every
// cross-shard effect must ride a mailbox drained inside the barrier
// (medium.ExchangeShardMessages) where all workers are parked. Two
// shapes violate that silently — they are data races that the keyed
// event order usually hides until a golden flakes:
//
//   - scheduling (At/After/AtArg/AfterArg/AtKeyedArg) on a scheduler
//     obtained by indexing a scheduler slice, directly
//     (`scheds[i].At(...)`) or through a one-hop local
//     (`s := scheds[i]; s.At(...)`). Indexing selects an arbitrary
//     shard; if i is not provably your own shard this schedules onto
//     a scheduler another goroutine is running;
//   - writing a field of an indexed element of a slice whose element
//     struct carries a scheduler — per-shard or per-node state blocks
//     (`m.nodes[i].nav = t`). The index picks another shard's state.
//
// Barrier and setup contexts are exempt by the codebase's naming
// contract: functions whose name contains "Exchange" or "Configure"
// run with every worker parked (or before any worker exists), and may
// fan out freely. Receiving an indexed scheduler as a parameter is
// also fine — the caller asserts ownership by passing it. Anything
// else carries a //detlint:allow shardsafe directive with its safety
// argument.
var Shardsafe = &Analyzer{
	Name: "shardsafe",
	Doc:  "flag scheduling on slice-indexed schedulers and writes to indexed shard state outside Exchange/Configure barriers",
	Run:  runShardsafe,
}

// shardExempt reports whether the innermost named function on the
// stack is a barrier or setup context by naming contract.
func shardExempt(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			name := fd.Name.Name
			return strings.Contains(name, "Exchange") || strings.Contains(name, "Configure")
		}
	}
	return false
}

// isSchedulerType reports whether t (after pointer indirection) is a
// duck-typed scheduler: a named type with both At and AtArg.
func isSchedulerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && hasMethod(named, "At") && hasMethod(named, "AtArg")
}

// isSchedulerSlice reports whether t is a slice (or array) of
// schedulers.
func isSchedulerSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isSchedulerType(u.Elem())
	case *types.Array:
		return isSchedulerType(u.Elem())
	}
	return false
}

// schedulerBearingSlice reports whether t is a slice/array whose
// element struct (after one pointer level) carries a scheduler-typed
// field — the shape of per-node / per-shard state blocks.
func schedulerBearingSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = p.Elem()
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isSchedulerType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func runShardsafe(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// First pass per file: locals assigned from a scheduler-slice
		// index (`s := scheds[i]`) are tainted as possibly-foreign.
		indexed := make(map[types.Object]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				idx, ok := ast.Unparen(rhs).(*ast.IndexExpr)
				if !ok || !isSchedulerSlice(info.TypeOf(idx.X)) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						indexed[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						indexed[obj] = true
					}
				}
			}
			return true
		})

		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || schedCallbackSlot(sel.Sel.Name) < 0 {
					return true
				}
				named := namedRecvOf(info, sel)
				if named == nil || !hasMethod(named, "At") || !hasMethod(named, "AtArg") {
					return true
				}
				if shardExempt(stack) {
					return true
				}
				recv := ast.Unparen(sel.X)
				if idx, ok := recv.(*ast.IndexExpr); ok && isSchedulerSlice(info.TypeOf(idx.X)) {
					pass.Reportf(n.Pos(), "%s on a scheduler indexed out of a shard slice; between barriers only the owning goroutine may schedule here — route cross-shard work through a mailbox drained in an Exchange function", sel.Sel.Name)
					return true
				}
				if id, ok := recv.(*ast.Ident); ok && indexed[info.Uses[id]] {
					pass.Reportf(n.Pos(), "%s on %q, which was indexed out of a shard slice; between barriers only the owning goroutine may schedule here — route cross-shard work through a mailbox drained in an Exchange function", sel.Sel.Name, id.Name)
				}

			case *ast.AssignStmt:
				if shardExempt(stack) {
					return true
				}
				for _, lhs := range n.Lhs {
					reportIndexedStateWrite(pass, lhs)
				}

			case *ast.IncDecStmt:
				if shardExempt(stack) {
					return true
				}
				reportIndexedStateWrite(pass, n.X)
			}
			return true
		})
	}
}

// reportIndexedStateWrite flags `S[i].field = ...` where S's elements
// carry a scheduler — a write into (potentially) another shard's state
// block.
func reportIndexedStateWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	idx, ok := ast.Unparen(sel.X).(*ast.IndexExpr)
	if !ok {
		return
	}
	if !schedulerBearingSlice(pass.Pkg.Info.TypeOf(idx.X)) {
		return
	}
	pass.Reportf(lhs.Pos(), "write to field %q of an indexed element of a scheduler-bearing slice; between barriers a shard may mutate only state it owns — move this into an Exchange/Configure context or its owner's shard", sel.Sel.Name)
}
