package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floateq flags == and != between floating-point expressions. In the
// simulator's state machines an exact float comparison encodes a
// knife-edge decision: two mathematically equal computations can differ
// in the last ulp depending on evaluation order or platform, flipping
// the branch and desynchronising goldens. Comparisons should use a
// tolerance, an ordering test (<, <=), or integer-typed state instead.
// Struct and array equality that reaches a float field is flagged for
// the same reason.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point expressions in simulation state machines",
	Run:  runFloateq,
}

func runFloateq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := info.Types[be.X], info.Types[be.Y]
			if xt.Type == nil || yt.Type == nil {
				return true
			}
			// A comparison folded entirely at compile time is
			// deterministic by construction.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if floatComparison(xt.Type) || floatComparison(yt.Type) {
				pass.Reportf(be.OpPos, "floating-point %s comparison; use a tolerance, an ordering test, or integer state", be.Op)
			}
			return true
		})
	}
}

// floatComparison reports whether equality on type t compares floats:
// directly, or through a struct/array component.
func floatComparison(t types.Type) bool {
	return isFloat(t) || containsFloat(t)
}
