// Package linttest is an analysistest-style harness for detlint
// analyzers: it loads a testdata package, runs analyzers over it, and
// compares the diagnostics against `// want` expectations embedded in
// the source.
//
// Expectations follow the golang.org/x/tools/go/analysis/analysistest
// convention: a comment `// want "re1" "re2"` (double- or back-quoted
// regexps) on a line means exactly len(wants) diagnostics are expected
// on that line, each matched by one of the regexps. Lines without a
// want comment must produce no diagnostics.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dcfguard/internal/lint"
)

var wantRE = regexp.MustCompile(`// want ((?:(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `)\s*)+)$`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads the package at pattern (a go list pattern relative to the
// module root, e.g. "./internal/lint/testdata/src/wallclock"), applies
// the analyzers, and reports any mismatch between diagnostics and want
// comments as test failures.
func Run(t *testing.T, pattern string, analyzers ...*lint.Analyzer) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]

	diags := lint.Run(pkgs, analyzers)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for filename, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{filename, i + 1}
			for _, q := range wantArgRE.FindAllString(m[1], -1) {
				pat, err := unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", filename, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", filename, i+1, pat, err)
				}
				wants[k] = append(wants[k], re)
			}
		}
	}

	// Match each diagnostic against the unconsumed wants on its line.
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%v: unexpected diagnostic", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod. Tests run with cwd set to their package directory, so this
// finds the repository root from any internal package.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
