package lint

import (
	"go/token"
	"sort"
	"strings"
)

// The //detlint:allow directive suppresses named analyzers for exactly
// one source line. Placement rules:
//
//   - Trailing the offending code, the directive covers its own line:
//
//     for id := range m { ... } //detlint:allow maporder -- reason
//
//   - On a line of its own, it covers the next line. Consecutive
//     standalone directives stack: all of them cover the first line
//     after the run of directives.
//
//     //detlint:allow maporder
//     //detlint:allow floateq
//     for id := range m { ... }
//
//   - Anything else — a blank line or unrelated code between directive
//     and target — breaks the association and the directive silently
//     covers a line where nothing is reported. Keeping the rule this
//     rigid is deliberate: a suppression that can drift away from the
//     code it excuses is worse than no suppression.
//
// Several names may share one directive ("//detlint:allow a b"). Text
// after a "--" field is a free-form justification; the pre-merge gate
// does not require it, but review does.
//
// The //detlint:allow-package variant suppresses the named analyzers
// for the WHOLE package the file belongs to. It exists for packages
// whose domain legitimately is the thing an analyzer bans — the serve
// daemon's retry timers and HTTP deadlines are wall-clock by nature —
// where per-line directives would be pure noise. The blast radius is a
// package, so the justification after "--" is mandatory: a bare
// allow-package is reported as a diagnostic, not merely flagged by the
// audit. `dcflint -audit-allows` lists package-scoped sites alongside
// line sites, labelled with their scope.

// allowIndex records the analyzer names suppressed per file and line,
// plus the names suppressed for the entire package.
type allowIndex struct {
	lines map[string]map[int]map[string]bool
	pkg   map[string]bool
}

func newAllowIndex() allowIndex {
	return allowIndex{
		lines: make(map[string]map[int]map[string]bool),
		pkg:   make(map[string]bool),
	}
}

func (ai allowIndex) add(file string, line int, name string) {
	lines := ai.lines[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		ai.lines[file] = lines
	}
	names := lines[line]
	if names == nil {
		names = make(map[string]bool)
		lines[line] = names
	}
	names[name] = true
}

func (ai allowIndex) addPackage(name string) {
	ai.pkg[name] = true
}

func (ai allowIndex) allows(file string, line int, name string) bool {
	return ai.pkg[name] || ai.lines[file][line][name]
}

const (
	directivePrefix  = "//detlint:"
	allowVerb        = "allow"
	allowPackageVerb = "allow-package"
)

// parseAllowArgs splits a directive's argument string into analyzer
// names and the justification after "--". A nested "//" starts an
// unrelated trailing comment and ends the name list.
func parseAllowArgs(argstr string) (names []string, just string) {
	fields := strings.Fields(argstr)
	for i, field := range fields {
		if field == "--" {
			just = strings.TrimSpace(strings.Join(fields[i+1:], " "))
			break
		}
		if strings.HasPrefix(field, "//") {
			break
		}
		names = append(names, field)
	}
	return names, just
}

// An AllowSite is one //detlint:allow or //detlint:allow-package
// directive, for the audit mode: where it is, what it suppresses, how
// far the suppression reaches, and the justification after "--" (empty
// when the author left none — which `dcflint -audit-allows` treats as a
// failure, since an unexplained suppression is a landmine for the next
// reader).
type AllowSite struct {
	Pos   token.Position `json:"pos"`
	Names []string       `json:"names"`
	// Scope is "line" for //detlint:allow and "package" for
	// //detlint:allow-package.
	Scope         string `json:"scope"`
	Justification string `json:"justification"`
}

// AllowSites scans every package for allow directives, in position
// order. Malformed directives are skipped here — Run reports them as
// diagnostics already.
func AllowSites(pkgs []*Package) []AllowSite {
	var sites []AllowSite
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					verb, argstr, _ := strings.Cut(rest, " ")
					var scope string
					switch verb {
					case allowVerb:
						scope = "line"
					case allowPackageVerb:
						scope = "package"
					default:
						continue
					}
					names, just := parseAllowArgs(argstr)
					if len(names) == 0 {
						continue
					}
					sites = append(sites, AllowSite{
						Pos:           pkg.Fset.Position(c.Slash),
						Names:         names,
						Scope:         scope,
						Justification: just,
					})
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i].Pos, sites[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return sites
}

// parseDirectives scans every comment in the package for detlint
// directives, resolving each to the source line (or the whole package,
// for allow-package) it covers. Malformed directives — an unknown verb,
// a missing or unknown analyzer name, an allow-package without its
// mandatory justification — are reported as diagnostics under the
// pseudo-analyzer "detlint" so that a typo cannot silently suppress
// nothing.
func parseDirectives(pkg *Package, known map[string]bool) (allowIndex, []Diagnostic) {
	allow := newAllowIndex()
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: "detlint"}, Pkg: pkg, diags: &diags}
		p.Reportf(pos, format, args...)
	}

	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		src := pkg.Src[filename]
		tf := pkg.Fset.File(f.Pos())

		// First pass: collect each directive with its line and whether it
		// stands alone on that line (nothing but whitespace before it).
		type directive struct {
			line       int
			standalone bool
			names      []string
		}
		var dirs []directive
		standaloneAt := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, argstr, _ := strings.Cut(rest, " ")
				if verb != allowVerb && verb != allowPackageVerb {
					report(c.Slash, "unknown detlint directive %q (only %q and %q are recognised)",
						directivePrefix+verb, directivePrefix+allowVerb, directivePrefix+allowPackageVerb)
					continue
				}
				// "--" starts the justification; a nested "//" starts an
				// unrelated trailing comment (e.g. a test harness
				// expectation). Either ends the name list.
				names, just := parseAllowArgs(argstr)
				if len(names) == 0 {
					report(c.Slash, "missing analyzer name in %s directive", directivePrefix+verb)
					continue
				}
				ok := true
				for _, n := range names {
					if !known[n] {
						report(c.Slash, "unknown analyzer %q in %s directive", n, directivePrefix+verb)
						ok = false
					}
				}
				if !ok {
					continue
				}
				if verb == allowPackageVerb {
					// Package-wide suppression: the justification is not
					// optional — the audit could catch it later, but a
					// whole-package carve-out with no recorded reason should
					// not even parse clean.
					if just == "" {
						report(c.Slash, "missing -- justification in %s directive (package-wide suppressions must carry a reason)",
							directivePrefix+allowPackageVerb)
						continue
					}
					for _, n := range names {
						allow.addPackage(n)
					}
					continue
				}

				line := pkg.Fset.Position(c.Slash).Line
				lineStart := tf.Offset(tf.LineStart(line))
				commentStart := tf.Offset(c.Slash)
				standalone := len(strings.TrimSpace(string(src[lineStart:commentStart]))) == 0
				dirs = append(dirs, directive{line: line, standalone: standalone, names: names})
				if standalone {
					standaloneAt[line] = true
				}
			}
		}

		// Second pass: resolve targets. A trailing directive covers its
		// own line; a standalone directive skips past any stacked
		// directives below it and covers the first non-directive line.
		for _, d := range dirs {
			target := d.line
			if d.standalone {
				target = d.line + 1
				for standaloneAt[target] {
					target++
				}
			}
			for _, n := range d.names {
				allow.add(filename, target, n)
			}
		}
	}
	return allow, diags
}
