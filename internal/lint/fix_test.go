package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dcfguard/internal/lint"
)

// TestApplyFixes is the quickcheck for `dcflint -fix`: run the
// fix-carrying analyzers over the fixes corpus, apply every suggested
// fix, and require that the rewritten package (a) compiles and (b)
// re-lints clean in a scratch module. A fix that merely silences the
// diagnostic without preserving compilability would fail here.
func TestApplyFixes(t *testing.T) {
	root := repoRoot(t)
	analyzers := []*lint.Analyzer{lint.Maporder, lint.Hotalloc}
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/fixes")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, analyzers)
	if len(diags) != 3 {
		t.Fatalf("fixes corpus produced %d diagnostics, want 3:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Fix == nil {
			t.Fatalf("diagnostic carries no fix: %v", d)
		}
	}

	fixed, err := lint.ApplyFixes(pkgs, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("ApplyFixes rewrote %d files, want 1", len(fixed))
	}

	// Reassemble a scratch module mirroring the corpus layout: the sim
	// stub verbatim, the fixes package post-fix.
	scratch := t.TempDir()
	write := func(rel string, content []byte) {
		full := filepath.Join(scratch, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", []byte("module dcfguard\n\ngo 1.22\n"))
	stub, err := os.ReadFile(filepath.Join(root, "internal/lint/testdata/src/sim/sim.go"))
	if err != nil {
		t.Fatal(err)
	}
	write("internal/lint/testdata/src/sim/sim.go", stub)
	for name, content := range fixed {
		rel, err := filepath.Rel(root, name)
		if err != nil {
			t.Fatal(err)
		}
		write(rel, content)
	}

	cmd := exec.Command("go", "build", "./internal/lint/testdata/src/sim", "./internal/lint/testdata/src/fixes")
	cmd.Dir = scratch
	if out, err := cmd.CombinedOutput(); err != nil {
		var fixedSrc string
		for _, content := range fixed {
			fixedSrc = string(content)
		}
		t.Fatalf("fixed corpus does not build: %v\n%s\nfixed source:\n%s", err, out, fixedSrc)
	}

	repkgs, err := lint.Load(scratch, "./internal/lint/testdata/src/fixes")
	if err != nil {
		t.Fatal(err)
	}
	rediags := lint.Run(repkgs, analyzers)
	if len(rediags) != 0 {
		var fixedSrc strings.Builder
		for _, content := range fixed {
			fixedSrc.Write(content)
		}
		t.Fatalf("fixed corpus re-lints dirty:\n%v\nfixed source:\n%s", rediags, fixedSrc.String())
	}
}
