package lint

import (
	"go/ast"
)

// Wallclock forbids wall-clock time and the global math/rand source in
// simulation code. A simulated run must be a pure function of
// (scenario, seed): reading the host clock makes results vary run to
// run, and the global rand source is both shared mutable state (draws
// from one component perturb every other) and seeded differently per
// process. Simulation code must use the scheduler's clock
// (sim.Scheduler.Now) and streams from internal/rng instead.
//
// With facts available the check is interprocedural: a call to a
// function in ANOTHER package that transitively reads the wall clock is
// flagged at the call site, with the witness chain naming the root use.
// Same-package callees are exempt from the indirect rule — their direct
// use is already reported once, at the seed — so a clean module never
// double-reports.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since and the global math/rand source in simulation code, including one call away",
	Run:  runWallclock,
}

// wallclockBanned maps import path → function name → the replacement to
// suggest. Only package-level functions are listed: time.Duration,
// time.Time and friends remain legal as plain data types.
var wallclockBanned = map[string]map[string]string{
	"time": {
		"Now":       "the sim clock (Scheduler.Now)",
		"Since":     "sim-clock arithmetic",
		"Until":     "sim-clock arithmetic",
		"Sleep":     "Scheduler.After",
		"Tick":      "Scheduler.After",
		"After":     "Scheduler.After",
		"AfterFunc": "Scheduler.After",
		"NewTimer":  "Scheduler.After",
		"NewTicker": "Scheduler.After",
	},
	// Constructing a private source with rand.New(rand.NewSource(seed))
	// is not listed: it is deterministic, merely discouraged in favour of
	// internal/rng streams. Everything here draws from or mutates the
	// process-global source.
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				reportIndirectClock(pass, call)
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncOf(pass.Pkg.Info, sel)
			if !ok {
				return true
			}
			banned, ok := wallclockBanned[pkgPath]
			if !ok {
				return true
			}
			advice, ok := banned[name]
			if !ok {
				return true
			}
			if pkgPath == "time" {
				pass.Reportf(sel.Pos(), "%s.%s reads the wall clock in simulation code; use %s", pkgBase(pkgPath), name, advice)
			} else {
				pass.Reportf(sel.Pos(), "%s.%s draws from the %s global source in simulation code; use an internal/rng stream", pkgBase(pkgPath), name, pkgPath)
			}
			return true
		})
	}
}

// reportIndirectClock flags calls into other packages whose summaries
// carry a wall-clock or global-rand fact. The seed's own package gets
// the direct report; the indirect report tells the caller it is
// laundering nondeterminism through a helper.
func reportIndirectClock(pass *Pass, call *ast.CallExpr) {
	callee := calleeOf(pass.Pkg.Info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg.Types {
		return
	}
	ff := pass.Facts.Of(callee)
	switch {
	case ff.Has(FactWallClock):
		pass.Reportf(call.Pos(), "%s reads the wall clock indirectly: %s", callee.Name(), ff.Witness(FactWallClock))
	case ff.Has(FactGlobalRand):
		pass.Reportf(call.Pos(), "%s draws from a global rand source indirectly: %s", callee.Name(), ff.Witness(FactGlobalRand))
	}
}
