package lint

import (
	"go/ast"
)

// Wallclock forbids wall-clock time and the global math/rand source in
// simulation code. A simulated run must be a pure function of
// (scenario, seed): reading the host clock makes results vary run to
// run, and the global rand source is both shared mutable state (draws
// from one component perturb every other) and seeded differently per
// process. Simulation code must use the scheduler's clock
// (sim.Scheduler.Now) and streams from internal/rng instead.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since and the global math/rand source in simulation code",
	Run:  runWallclock,
}

// wallclockBanned maps import path → function name → the replacement to
// suggest. Only package-level functions are listed: time.Duration,
// time.Time and friends remain legal as plain data types.
var wallclockBanned = map[string]map[string]string{
	"time": {
		"Now":       "the sim clock (Scheduler.Now)",
		"Since":     "sim-clock arithmetic",
		"Until":     "sim-clock arithmetic",
		"Sleep":     "Scheduler.After",
		"Tick":      "Scheduler.After",
		"After":     "Scheduler.After",
		"AfterFunc": "Scheduler.After",
		"NewTimer":  "Scheduler.After",
		"NewTicker": "Scheduler.After",
	},
	// Constructing a private source with rand.New(rand.NewSource(seed))
	// is not listed: it is deterministic, merely discouraged in favour of
	// internal/rng streams. Everything here draws from or mutates the
	// process-global source.
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
}

func runWallclock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncOf(pass.Pkg.Info, sel)
			if !ok {
				return true
			}
			banned, ok := wallclockBanned[pkgPath]
			if !ok {
				return true
			}
			advice, ok := banned[name]
			if !ok {
				return true
			}
			if pkgPath == "time" {
				pass.Reportf(sel.Pos(), "%s.%s reads the wall clock in simulation code; use %s", pkgBase(pkgPath), name, advice)
			} else {
				pass.Reportf(sel.Pos(), "%s.%s draws from the %s global source in simulation code; use an internal/rng stream", pkgBase(pkgPath), name, pkgPath)
			}
			return true
		})
	}
}
