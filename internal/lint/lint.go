// Package lint is detlint: a static-analysis suite that mechanically
// enforces the simulator's determinism invariants. Every figure in the
// reproduction depends on runs being a pure function of (scenario,
// seed); the rules that guarantee that — no wall clock, no global
// math/rand, no observable map-iteration order, no floating-point
// equality in state machines, no closures on the scheduler hot path —
// used to live in comments and code review. The analyzers here turn
// them into build failures.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Reportf, analysistest-style golden diagnostics) but is self-contained
// on the standard library: packages are loaded via `go list -export`
// plus the gc export-data importer in load.go, so the module needs no
// external dependencies and works fully offline.
//
// A site that is deliberately exempt carries a directive comment:
//
//	//detlint:allow maporder -- rendering only; keys sorted upstream
//
// either trailing the offending line or on the line(s) immediately
// above it. See directive.go for the exact placement rules.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer describes one invariant check. The shape intentionally
// matches golang.org/x/tools/go/analysis.Analyzer so the checks could be
// rehosted on the real framework if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why
	// it matters for reproducibility.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// A Pass connects an Analyzer to the single package it is inspecting.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies the given analyzers to every package, filters out findings
// suppressed by //detlint:allow directives, and returns the survivors —
// plus any diagnostics about malformed directives themselves — sorted by
// position. Directive names are validated against the full registered
// set (All), not just the analyzers being run, so a file exercising one
// analyzer may still carry allow directives for another.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		allow, dirDiags := parseDirectives(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &raw})
		}
		for _, d := range raw {
			if allow.allows(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
				continue
			}
			out = append(out, d)
		}
		out = append(out, dirDiags...)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
