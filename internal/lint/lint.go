// Package lint is detlint: a static-analysis suite that mechanically
// enforces the simulator's determinism invariants. Every figure in the
// reproduction depends on runs being a pure function of (scenario,
// seed); the rules that guarantee that — no wall clock, no global
// math/rand, no observable map-iteration order, no floating-point
// equality in state machines, no closures on the scheduler hot path,
// no cross-shard scheduling outside barriers — used to live in
// comments and code review. The analyzers here turn them into build
// failures.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Reportf, analysistest-style golden diagnostics) but is self-contained
// on the standard library: packages are loaded via `go list -export`
// plus the gc export-data importer in load.go, so the module needs no
// external dependencies and works fully offline. Since detlint v2 the
// framework is interprocedural: ComputeFacts (facts.go) summarises
// every function bottom-up over the intra-module call graph, so the
// analyzers also catch violations hidden one call away.
//
// A site that is deliberately exempt carries a directive comment:
//
//	//detlint:allow maporder -- rendering only; keys sorted upstream
//
// either trailing the offending line or on the line(s) immediately
// above it. See directive.go for the exact placement rules.
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// An Analyzer describes one invariant check. The shape intentionally
// matches golang.org/x/tools/go/analysis.Analyzer so the checks could be
// rehosted on the real framework if the dependency ever becomes
// available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why
	// it matters for reproducibility.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// A Pass connects an Analyzer to the single package it is inspecting.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts is the module-wide interprocedural summary table, computed
	// over every loaded package (not just the analyzed scope). Nil in
	// tests that drive an analyzer without facts; all accessors are
	// nil-safe, degrading to the v1 per-function behaviour.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix records a finding at pos carrying a mechanical suggested
// fix that `dcflint -fix` can apply.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// A TextEdit replaces the byte range [Start, End) of Filename with
// NewText. Offsets index the file content as loaded (Package.Src).
type TextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"newText"`
}

// A SuggestedFix is a mechanical rewrite that resolves a diagnostic.
// Fixes must be safe to apply blindly: the analyzer only attaches one
// when the rewrite provably preserves behaviour.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
	// AddImports lists import paths the edited file must import for the
	// fix to compile (e.g. "slices" for an inserted slices.Sort call).
	AddImports []string `json:"addImports,omitempty"`
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Fix      *SuggestedFix  `json:"fix,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AnalyzePackage runs the analyzers over one package: raw findings,
// allow-directive filtering, and directive-validity diagnostics. The
// result depends only on the package's own source and the facts of its
// (transitive) callees, which makes it the unit of caching for
// dcflint's content-hashed cache.
func AnalyzePackage(pkg *Package, facts *Facts, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	allow, dirDiags := parseDirectives(pkg, known)
	var raw []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{Analyzer: a, Pkg: pkg, Facts: facts, diags: &raw})
	}
	var out []Diagnostic
	for _, d := range raw {
		if allow.allows(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return append(out, dirDiags...)
}

// Run applies the given analyzers to every package, filters out findings
// suppressed by //detlint:allow directives, and returns the survivors —
// plus any diagnostics about malformed directives themselves — sorted by
// position. Directive names are validated against the full registered
// set (All), not just the analyzers being run, so a file exercising one
// analyzer may still carry allow directives for another.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunScoped(pkgs, pkgs, analyzers)
}

// RunScoped computes interprocedural facts over all loaded packages but
// analyzes (and reports on) only the scope subset. Packages are
// analyzed in parallel; output order is deterministic regardless.
func RunScoped(all, scope []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := ComputeFacts(all)

	perPkg := make([][]Diagnostic, len(scope))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pkg := range scope {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = AnalyzePackage(pkg, facts, analyzers)
		}(i, pkg)
	}
	wg.Wait()

	var out []Diagnostic
	for _, diags := range perPkg {
		out = append(out, diags...)
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by position, then analyzer, then
// message — the canonical presentation and baseline order.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
