package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectWithStack walks the file like ast.Inspect but also hands the
// visitor the stack of enclosing nodes (outermost first, n last).
func inspectWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !visit(n, stack) {
			// The visitor pruned this subtree; ast.Inspect will not send
			// the matching nil, so pop now.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack, excluding node n itself.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// pkgFuncOf resolves a selector like time.Now or rand.Intn to (import
// path, function name). It returns ok=false for anything that is not a
// direct reference to a package-level function of an imported package.
func pkgFuncOf(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedRecvOf returns the named receiver type of a method call selector
// (dereferencing one level of pointer), or nil if sel is not a method
// selection.
func namedRecvOf(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasMethod reports whether named (or *named) has a method with the
// given name, exported or not, declared in any package.
func hasMethod(named *types.Named, name string) bool {
	if named == nil {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// pkgBase returns the last path element of an import path: the
// conventional package name. Used for duck-typed package matching so the
// analyzers recognise both the real simulator packages and the stub
// packages under testdata/src.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// containsFloat reports whether comparing two values of type t with ==
// performs any floating-point equality: t itself is float/complex, or t
// is a struct or array with a float component at any depth.
func containsFloat(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem())
	}
	return false
}
