package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose body makes iteration order
// observable. Go randomises map order per run, so any append, output
// emission, RNG draw, event schedule, or floating-point accumulation
// inside such a loop leaks nondeterminism straight into results and
// goldens. The blessed pattern (stats/collector.go Senders) extracts the
// keys, sorts them, and iterates the sorted slice; a pure key-extraction
// loop is therefore exempt — provided the slice actually reaches a
// sort.*/slices.* call in the same function.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body makes the randomised order observable",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}

			if dst, pure := extractionTarget(pass.Pkg.Info, rs); pure {
				if !sortedInFunc(pass.Pkg.Info, enclosingFuncBody(stack), dst) {
					pass.ReportfFix(rs.For, sortAfterRangeFix(pass.Pkg, rs, dst),
						"map keys are extracted into %q but never sorted in this function; sort before iterating", dst.Name())
				}
				return true
			}

			if pos, what := orderSensitiveOp(pass, rs); pos.IsValid() {
				pass.Reportf(rs.For, "map iteration %s; extract and sort the keys first (see stats.Collector.Senders)", what)
			}
			return true
		})
	}
}

// sortAfterRangeFix builds the mechanical fix for an extract-but-never-
// sorted loop: insert `slices.Sort(dst)` on the line after the range
// statement. Only offered when dst is a plain local identifier of
// ordered element type — anything fancier (struct fields, custom
// orderings) needs a human.
func sortAfterRangeFix(pkg *Package, rs *ast.RangeStmt, dst *types.Var) *SuggestedFix {
	slice, ok := dst.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsOrdered) == 0 {
		return nil
	}
	// The insertion names dst bare, so the fix only applies when the
	// append target was a plain local (not a struct field selector).
	var isLocal bool
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == dst {
			isLocal = true
		}
		return true
	})
	if !isLocal {
		return nil
	}
	pos := pkg.Fset.Position(rs.End())
	start := pkg.Fset.Position(rs.Pos())
	src, ok := pkg.Src[pos.Filename]
	if !ok {
		return nil
	}
	// Reuse the range statement's own indentation for the inserted line.
	lineStart := start.Offset - (start.Column - 1)
	indent := string(src[lineStart:start.Offset])
	if strings.TrimSpace(indent) != "" {
		return nil
	}
	return &SuggestedFix{
		Message: fmt.Sprintf("insert slices.Sort(%s) after the extraction loop", dst.Name()),
		Edits: []TextEdit{{
			Filename: pos.Filename,
			Start:    pos.Offset,
			End:      pos.Offset,
			NewText:  "\n" + indent + "slices.Sort(" + dst.Name() + ")",
		}},
		AddImports: []string{"slices"},
	}
}

// extractionTarget reports whether the range body is a pure
// key/value-extraction loop — every statement appends only the range
// variables (possibly converted, possibly their fields) to one slice —
// and returns the object identifying that slice: the local variable, or
// the struct field for a `t.Receivers = append(t.Receivers, id)` shape.
func extractionTarget(info *types.Info, rs *ast.RangeStmt) (*types.Var, bool) {
	var rangeVars []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			rangeVars = append(rangeVars, info.Defs[id])
		}
	}
	if len(rs.Body.List) == 0 {
		return nil, false
	}
	var dst *types.Var
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil, false
		}
		lhsVar := sliceVarOf(info, as.Lhs[0])
		if lhsVar == nil {
			return nil, false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" || len(call.Args) < 2 {
			return nil, false
		}
		if sliceVarOf(info, call.Args[0]) != lhsVar {
			return nil, false
		}
		// The appended values may mention only the range variables (plus
		// their fields, types, constants, and functions — conversions
		// like int(id) and literals like Pair{k.a, k.b} are fine); any
		// other variable makes this a real loop body.
		for _, arg := range call.Args[1:] {
			if !usesOnlyVars(info, arg, rangeVars) {
				return nil, false
			}
		}
		if dst != nil && lhsVar != dst {
			return nil, false
		}
		dst = lhsVar
	}
	return dst, dst != nil
}

// sliceVarOf resolves an append target to its identifying variable: the
// object of a plain identifier, or the field object of a selector like
// t.Receivers. Anything else (index expressions, calls) returns nil.
func sliceVarOf(info *types.Info, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v
		}
	}
	return nil
}

// usesOnlyVars reports whether every variable mentioned in expr is one
// of the allowed objects. Field names in selections and composite
// literal keys are not "mentions": k.sender reads only k.
func usesOnlyVars(info *types.Info, expr ast.Expr, allowed []types.Object) bool {
	skip := make(map[*ast.Ident]bool)
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			skip[e.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := e.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || skip[id] {
			return true
		}
		if v, isVar := info.Uses[id].(*types.Var); isVar {
			found := false
			for _, a := range allowed {
				if v == a {
					found = true
				}
			}
			if !found {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// sortedInFunc reports whether fn contains a sorting call that mentions
// dst among its arguments: any function from package sort or slices, or
// — by naming convention — any local helper whose name starts with
// "sort"/"Sort" (e.g. topo.sortIDs).
func sortedInFunc(info *types.Info, fn *ast.BlockStmt, dst *types.Var) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		isSort := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if pkgPath, _, ok := pkgFuncOf(info, fun); ok {
				isSort = pkgPath == "sort" || pkgPath == "slices"
			} else {
				isSort = sortishName(fun.Sel.Name)
			}
		case *ast.Ident:
			isSort = sortishName(fun.Name)
		}
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, isIdent := m.(*ast.Ident); isIdent && info.Uses[id] == dst {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func sortishName(name string) bool {
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

// orderSensitiveOp scans the range body for the first operation through
// which map-iteration order can leak into observable state, returning
// its position and a description. With facts available, a call to any
// function that transitively draws RNG, schedules events, or mutates
// package state counts too — the loop body cannot launder order
// sensitivity through a helper.
func orderSensitiveOp(pass *Pass, rs *ast.RangeStmt) (token.Pos, string) {
	info := pass.Pkg.Info
	best := token.NoPos
	what := ""
	hit := func(pos token.Pos, desc string) {
		if !best.IsValid() || pos < best {
			best, what = pos, desc
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			hit(n.Pos(), "sends on a channel")

		case *ast.CallExpr:
			if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "append" {
				if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
					hit(n.Pos(), "appends to a slice")
				}
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				indirectOrderHit(pass, n, hit)
				return true
			}
			if pkgPath, name, ok := pkgFuncOf(info, sel); ok {
				switch {
				case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
					hit(n.Pos(), "draws from an RNG")
				case pkgPath == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
					hit(n.Pos(), "emits output")
				default:
					indirectOrderHit(pass, n, hit)
				}
				return true
			}
			if named := namedRecvOf(info, sel); named != nil {
				base := ""
				if p := named.Obj().Pkg(); p != nil {
					base = pkgBase(p.Path())
				}
				switch {
				case base == "rng":
					hit(n.Pos(), "draws from an RNG")
				case base == "trace" || strings.HasPrefix(sel.Sel.Name, "Write"):
					hit(n.Pos(), "emits output")
				case schedulerMethod(sel.Sel.Name) && hasMethod(named, "At") && hasMethod(named, "AtArg"):
					hit(n.Pos(), "schedules events")
				default:
					indirectOrderHit(pass, n, hit)
				}
			}

		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if t := info.TypeOf(lhs); t != nil && isFloat(t) && !declaredIn(info, lhs, rs.Body) {
						hit(n.Pos(), "accumulates floating-point state (order changes rounding)")
					}
				}
			}
			for _, lhs := range n.Lhs {
				if isPackageLevelTarget(info, lhs) {
					hit(n.Pos(), "writes package-level state")
				}
			}

		case *ast.IncDecStmt:
			if t := info.TypeOf(n.X); t != nil && isFloat(t) && !declaredIn(info, n.X, rs.Body) {
				hit(n.Pos(), "accumulates floating-point state (order changes rounding)")
			}
			if isPackageLevelTarget(info, n.X) {
				hit(n.Pos(), "writes package-level state")
			}
		}
		return true
	})
	return best, what
}

// indirectOrderHit consults the fact table for a call that none of the
// direct patterns matched: if the callee transitively draws RNG,
// schedules events, or writes package-level state, iteration order
// leaks through it just the same.
func indirectOrderHit(pass *Pass, call *ast.CallExpr, hit func(token.Pos, string)) {
	callee := calleeOf(pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	ff := pass.Facts.Of(callee)
	switch {
	case ff.Has(FactDrawsRNG):
		hit(call.Pos(), fmt.Sprintf("calls %s, which %s", callee.Name(), ff.Witness(FactDrawsRNG)))
	case ff.Has(FactSchedules):
		hit(call.Pos(), fmt.Sprintf("calls %s, which %s", callee.Name(), ff.Witness(FactSchedules)))
	case ff.Has(FactMutatesShared):
		hit(call.Pos(), fmt.Sprintf("calls %s, which %s", callee.Name(), ff.Witness(FactMutatesShared)))
	}
}

func schedulerMethod(name string) bool {
	switch name {
	case "At", "After", "AtArg", "AfterArg":
		return true
	}
	return false
}

// declaredIn reports whether the root identifier of expr names a
// variable declared inside block (a per-iteration local, which cannot
// accumulate across iterations).
func declaredIn(info *types.Info, expr ast.Expr, block *ast.BlockStmt) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= block.Pos() && obj.Pos() < block.End()
}

// isPackageLevelTarget reports whether the root identifier of an
// assignment target is a package-level variable.
func isPackageLevelTarget(info *types.Info, expr ast.Expr) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// rootIdent unwraps selectors, indexes, stars, and parens to the
// leftmost identifier of an lvalue expression.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
