package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Eventalloc flags heap-boxed scheduler event records: `&Event{...}`
// and `new(Event)` where Event is the record type of a slab scheduler.
// Since the kernel round-2 refactor, Event records live in the
// Scheduler's flat []Event slab and are addressed by uint32 index;
// the only sanctioned allocation is the slab's own value append inside
// Scheduler.alloc (a plain `Event{}` literal, which this analyzer
// deliberately does not flag). A boxed record would dodge the free
// list, scatter hot state back across the heap, and hand out a *Event
// that dangles when the slab grows — so any `&Event{}` or `new(Event)`
// is a bug or a fixture, and fixtures can say so with a
// //detlint:allow eventalloc directive.
//
// Like the other analyzers the check is duck-typed: a named struct
// type called Event counts as a slab record when its defining package
// also declares a scheduler type (something with both At and AtArg),
// which matches the real internal/sim and the testdata stub alike.
var Eventalloc = &Analyzer{
	Name: "eventalloc",
	Doc:  "flag &Event{}/new(Event) boxing of slab scheduler event records",
	Run:  runEventalloc,
}

func runEventalloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				lit, ok := n.X.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if tv, ok := info.Types[lit]; ok && isSlabEventType(tv.Type) {
					pass.Reportf(n.Pos(), "&Event{} boxes a scheduler event record outside the slab; events are slab records addressed by index — schedule through At/AtArg instead")
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(n.Args) != 1 {
					return true
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if tv, ok := info.Types[n.Args[0]]; ok && tv.IsType() && isSlabEventType(tv.Type) {
					pass.Reportf(n.Pos(), "new(Event) boxes a scheduler event record outside the slab; events are slab records addressed by index — schedule through At/AtArg instead")
				}
			}
			return true
		})
	}
}

// isSlabEventType reports whether t is a named struct called Event
// whose defining package also declares a scheduler (a type with both
// At and AtArg methods).
func isSlabEventType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Event" {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if n, ok := tn.Type().(*types.Named); ok && hasMethod(n, "At") && hasMethod(n, "AtArg") {
			return true
		}
	}
	return false
}
