package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Rngstream guards the counter-RNG discipline (DESIGN.md §10). The
// simulator's reproducibility across shard counts rests on two
// conventions around internal/rng:
//
//   - counter keys are built ONLY by the canonical rng.Mix64,
//     rng.Mix64Pre and rng.Mix64Delta helpers. Hand-rolling the
//     splitmix64 finalizer at a call site (the 0x9e3779b97f4a7c15
//     multiply-xor dance) forks the key derivation: the copy drifts
//     from the canonical constants and two sites that must draw
//     identical values stop doing so. Any splitmix64 magic constant
//     outside the rng package is flagged;
//   - streams are derived at setup, once, and stored. Deriving a
//     stream inside a map-range body consumes derivations in
//     randomised order, and deriving one inside a scheduled event
//     handler re-derives per event on the hot path — both flagged.
//
// Sites with a genuine reason (e.g. a hash function that shares the
// constant for non-RNG purposes) carry //detlint:allow rngstream.
var Rngstream = &Analyzer{
	Name: "rngstream",
	Doc:  "flag hand-rolled splitmix64 key mixing outside internal/rng and stream derivation in map ranges or event handlers",
	Run:  runRngstream,
}

// splitmixConstants are the splitmix64/avalanche finalizer constants
// internal/rng's Mix64 helpers are built from. Appearing anywhere else,
// they mean someone re-implemented key mixing by hand.
var splitmixConstants = map[uint64]bool{
	0x9e3779b97f4a7c15: true, // golden-gamma increment
	0xbf58476d1ce4e5b9: true, // finalizer multiply 1
	0x94d049bb133111eb: true, // finalizer multiply 2
}

func runRngstream(pass *Pass) {
	info := pass.Pkg.Info
	inRngPkg := pkgBase(pass.Pkg.PkgPath) == "rng"

	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if inRngPkg {
					return true
				}
				tv, ok := info.Types[n]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					return true
				}
				if u, exact := constant.Uint64Val(tv.Value); exact && splitmixConstants[u] {
					pass.Reportf(n.Pos(), "splitmix64 constant %#x builds a counter-RNG key outside internal/rng; use rng.Mix64/Mix64Pre/Mix64Delta so every site derives identical keys", u)
				}

			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Stream" && name != "StreamN" {
					return true
				}
				named := namedRecvOf(info, sel)
				if named == nil {
					return true
				}
				p := named.Obj().Pkg()
				if p == nil || pkgBase(p.Path()) != "rng" {
					return true
				}
				switch where := streamContext(info, stack); where {
				case streamInMapRange:
					pass.Reportf(n.Pos(), "%s derives an rng stream inside a map-range body: derivation order follows the randomised iteration order; derive streams from sorted keys (or at setup) instead", name)
				case streamInHandler:
					pass.Reportf(n.Pos(), "%s derives an rng stream inside a scheduled event handler, re-deriving per event on the hot path; derive once at setup and store the stream", name)
				}
			}
			return true
		})
	}
}

type streamCtx int

const (
	streamOK streamCtx = iota
	streamInMapRange
	streamInHandler
)

// streamContext classifies where a Stream/StreamN call sits: inside a
// map-range body, inside a function literal passed to a scheduler
// entry point (an event handler), or neither. The innermost applicable
// context wins.
func streamContext(info *types.Info, stack []ast.Node) streamCtx {
	for i := len(stack) - 2; i >= 0; i-- {
		switch outer := stack[i].(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(outer.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return streamInMapRange
				}
			}
		case *ast.FuncLit:
			// An event handler is a literal sitting in the callback slot
			// of a scheduler call one level further out.
			if i >= 1 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if slot := schedCallbackSlot(sel.Sel.Name); slot >= 0 && slot < len(call.Args) && call.Args[slot] == outer {
							if named := namedRecvOf(info, sel); named != nil && hasMethod(named, "At") && hasMethod(named, "AtArg") {
								return streamInHandler
							}
						}
					}
				}
			}
		case *ast.FuncDecl:
			return streamOK
		}
	}
	return streamOK
}
