package lint

// All returns every registered analyzer, in reporting order. Directive
// validation uses this set, so a new analyzer becomes a legal
// //detlint:allow name simply by being added here.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, Maporder, Floateq, Hotalloc, Eventalloc, Obshot, Shardmail, Shardsafe, Atomicmix, Rngstream}
}

// ByName returns the named analyzers, or nil if any name is unknown.
func ByName(names ...string) []*Analyzer {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return out
}
