package frame

import (
	"encoding/binary"
	"fmt"

	"dcfguard/internal/sim"
)

// wireSize is the fixed size of the encoded header. The codec exists so
// tools (traces, conformance tests, the pcap writer) have a stable byte
// representation of the modified headers; the simulated airtime uses
// Bytes(), which models the true 802.11 sizes. The trailing byte holds
// codec-level flags (bit 0: Corrupted); unknown flag bits are rejected
// on decode so the representation stays canonical.
const wireSize = 1 + 4 + 4 + 4 + 1 + 4 + 8 + 4 + 1

// flagCorrupted is the flags-byte bit carrying Frame.Corrupted.
const flagCorrupted = 1 << 0

// Marshal encodes the frame header into a fixed-width big-endian layout.
func Marshal(f Frame) []byte {
	buf := make([]byte, wireSize)
	buf[0] = byte(f.Type)
	binary.BigEndian.PutUint32(buf[1:], uint32(int32(f.Src)))
	binary.BigEndian.PutUint32(buf[5:], uint32(int32(f.Dst)))
	binary.BigEndian.PutUint32(buf[9:], f.Seq)
	buf[13] = f.Attempt
	binary.BigEndian.PutUint32(buf[14:], uint32(f.AssignedBackoff))
	binary.BigEndian.PutUint64(buf[18:], uint64(f.Duration))
	binary.BigEndian.PutUint32(buf[26:], uint32(int32(f.PayloadBytes)))
	if f.Corrupted {
		buf[30] |= flagCorrupted
	}
	return buf
}

// Unmarshal decodes a header written by Marshal.
func Unmarshal(buf []byte) (Frame, error) {
	if len(buf) != wireSize {
		return Frame{}, fmt.Errorf("frame: wire length %d, want %d", len(buf), wireSize)
	}
	if buf[30]&^flagCorrupted != 0 {
		return Frame{}, fmt.Errorf("frame: unknown flag bits %#x", buf[30])
	}
	f := Frame{
		Type:            Type(buf[0]),
		Src:             NodeID(int32(binary.BigEndian.Uint32(buf[1:]))),
		Dst:             NodeID(int32(binary.BigEndian.Uint32(buf[5:]))),
		Seq:             binary.BigEndian.Uint32(buf[9:]),
		Attempt:         buf[13],
		AssignedBackoff: int32(binary.BigEndian.Uint32(buf[14:])),
		Duration:        sim.Time(binary.BigEndian.Uint64(buf[18:])),
		PayloadBytes:    int(int32(binary.BigEndian.Uint32(buf[26:]))),
		Corrupted:       buf[30]&flagCorrupted != 0,
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}
