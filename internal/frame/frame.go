// Package frame defines the MAC frames exchanged on the simulated
// channel: the four IEEE 802.11 DCF frame types (RTS, CTS, DATA, ACK)
// extended with the two header fields the paper adds — an Attempt number
// in the RTS, and a receiver-assigned backoff in the CTS and ACK.
package frame

import (
	"fmt"

	"dcfguard/internal/sim"
)

// NodeID identifies a node. IDs are small dense integers assigned by the
// network builder; they double as the nodeId input of the paper's
// deterministic retransmission function f.
type NodeID int

// Type is the MAC frame type.
type Type uint8

// Frame types. Start at 1 so the zero value is invalid and accidental
// zero-initialised frames are caught by Validate.
const (
	RTS Type = iota + 1
	CTS
	Data
	Ack
)

// String returns the conventional name of the frame type.
func (t Type) String() string {
	switch t {
	case RTS:
		return "RTS"
	case CTS:
		return "CTS"
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// MAC-layer frame sizes in bytes, per IEEE 802.11 (1999) §7. The control
// frames carry the paper's extra fields: +1 byte attempt number on RTS,
// +2 bytes assigned backoff on CTS and ACK. DATA overhead is the 24-byte
// MAC header plus 4-byte FCS.
const (
	RTSBytes     = 20 + 1
	CTSBytes     = 14 + 2
	AckBytes     = 14 + 2
	DataOverhead = 28
	// PLCPPreamble is the long-preamble PLCP duration (144 µs preamble
	// + 48 µs header at 1 Mbps), spent once per frame regardless of the
	// MAC bit rate.
	PLCPPreamble = 192 * sim.Microsecond
)

// Frame is one MAC frame on the air. Frames are immutable once
// transmitted; the medium hands the same value to every receiver.
type Frame struct {
	Type Type
	// Src and Dst are the transmitter and intended receiver. Control
	// and data frames in DCF are all unicast; overhearing nodes use
	// Duration for their NAV.
	Src, Dst NodeID
	// Seq numbers DATA transmissions per sender, for duplicate
	// filtering and tracing.
	Seq uint32
	// Attempt is the paper's new RTS header field: 1 after a success,
	// incremented on every retransmission. Zero on non-RTS frames.
	Attempt uint8
	// AssignedBackoff is the backoff (in slots) the receiver assigns to
	// the sender for its next transmission, carried in CTS and ACK
	// frames (the paper's protocol). Negative means "not present"
	// (plain 802.11 operation).
	AssignedBackoff int32
	// Duration is the NAV value: how long after this frame ends the
	// medium remains reserved for the ongoing exchange.
	Duration sim.Time
	// PayloadBytes is the application payload length of a DATA frame.
	PayloadBytes int
	// Corrupted marks a frame the channel destroyed in flight (collision,
	// fading, or injected fault). It is observability metadata, not an
	// on-air field: the MAC never sees corrupted frames decoded — traces
	// and pcap exports use the bit so captures distinguish losses.
	Corrupted bool
}

// Validate reports whether the frame is well-formed.
func (f Frame) Validate() error {
	switch f.Type {
	case RTS:
		if f.Attempt == 0 {
			return fmt.Errorf("frame: RTS with zero attempt number")
		}
	case CTS, Ack:
	case Data:
		if f.PayloadBytes < 0 {
			return fmt.Errorf("frame: DATA with negative payload %d", f.PayloadBytes)
		}
	default:
		return fmt.Errorf("frame: invalid type %d", f.Type)
	}
	if f.Src == f.Dst {
		return fmt.Errorf("frame: src == dst == %d", f.Src)
	}
	if f.Duration < 0 {
		return fmt.Errorf("frame: negative duration %v", f.Duration)
	}
	return nil
}

// Bytes returns the frame's on-air MAC size in bytes.
func (f Frame) Bytes() int {
	switch f.Type {
	case RTS:
		return RTSBytes
	case CTS:
		return CTSBytes
	case Ack:
		return AckBytes
	case Data:
		return DataOverhead + f.PayloadBytes
	default:
		panic(fmt.Sprintf("frame: Bytes on invalid type %d", f.Type))
	}
}

// Airtime returns the time the frame occupies the channel at the given
// bit rate, including the fixed-rate PLCP preamble.
func (f Frame) Airtime(bitRate int64) sim.Time {
	return Airtime(f.Bytes(), bitRate)
}

// Airtime returns the on-air duration of a MAC frame of the given size,
// including the PLCP preamble.
func Airtime(bytes int, bitRate int64) sim.Time {
	if bytes < 0 || bitRate <= 0 {
		panic(fmt.Sprintf("frame: Airtime(%d bytes, %d bps)", bytes, bitRate))
	}
	bits := int64(bytes) * 8
	return PLCPPreamble + sim.Time(bits*int64(sim.Second)/bitRate)
}

// String renders the frame for traces.
func (f Frame) String() string {
	switch f.Type {
	case RTS:
		return fmt.Sprintf("RTS %d->%d seq=%d attempt=%d", f.Src, f.Dst, f.Seq, f.Attempt)
	case CTS:
		return fmt.Sprintf("CTS %d->%d backoff=%d", f.Src, f.Dst, f.AssignedBackoff)
	case Data:
		return fmt.Sprintf("DATA %d->%d seq=%d len=%d", f.Src, f.Dst, f.Seq, f.PayloadBytes)
	case Ack:
		return fmt.Sprintf("ACK %d->%d backoff=%d", f.Src, f.Dst, f.AssignedBackoff)
	default:
		return fmt.Sprintf("frame type=%d %d->%d", f.Type, f.Src, f.Dst)
	}
}
