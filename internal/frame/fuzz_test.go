package frame

import (
	"testing"

	"dcfguard/internal/sim"
)

// FuzzUnmarshal ensures the codec never panics on arbitrary input and
// that anything it accepts round-trips bit-exactly.
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(Frame{Type: RTS, Src: 1, Dst: 2, Seq: 7, Attempt: 1,
		AssignedBackoff: -1, Duration: 500 * sim.Microsecond}))
	f.Add(Marshal(Frame{Type: Data, Src: 3, Dst: 4, Seq: 9, PayloadBytes: 512}))
	f.Add(Marshal(Frame{Type: Data, Src: 3, Dst: 4, Seq: 9, PayloadBytes: 512, Corrupted: true}))
	f.Add(Marshal(Frame{Type: Ack, Src: 2, Dst: 1, AssignedBackoff: 31, Corrupted: true}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted frames must validate and survive a round trip —
		// including the corruption bit, which lives in the flags byte.
		if verr := fr.Validate(); verr != nil {
			t.Fatalf("Unmarshal accepted an invalid frame: %v", verr)
		}
		again, err := Unmarshal(Marshal(fr))
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again != fr {
			t.Fatalf("round trip changed frame: %+v vs %+v", again, fr)
		}
		if again.Corrupted != fr.Corrupted {
			t.Fatalf("corruption bit lost in round trip: %+v", fr)
		}
	})
}

// FuzzAirtime ensures airtime computation is total over its domain.
func FuzzAirtime(f *testing.F) {
	f.Add(512, int64(2_000_000))
	f.Add(0, int64(1))
	f.Fuzz(func(t *testing.T, bytes int, rate int64) {
		if bytes < 0 || rate <= 0 {
			return
		}
		if bytes > 1<<20 {
			bytes %= 1 << 20
		}
		if got := Airtime(bytes, rate); got < PLCPPreamble {
			t.Fatalf("Airtime(%d, %d) = %v below preamble", bytes, rate, got)
		}
	})
}
