package frame

import (
	"testing"
	"testing/quick"

	"dcfguard/internal/sim"
)

func validRTS() Frame {
	return Frame{Type: RTS, Src: 1, Dst: 2, Seq: 7, Attempt: 1, AssignedBackoff: -1,
		Duration: 500 * sim.Microsecond}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{RTS: "RTS", CTS: "CTS", Data: "DATA", Ack: "ACK", Type(9): "Type(9)"}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := validRTS().Validate(); err != nil {
		t.Fatalf("valid RTS rejected: %v", err)
	}

	f := validRTS()
	f.Attempt = 0
	if f.Validate() == nil {
		t.Error("RTS with attempt 0 passed validation")
	}

	f = validRTS()
	f.Dst = f.Src
	if f.Validate() == nil {
		t.Error("frame with src == dst passed validation")
	}

	f = validRTS()
	f.Duration = -1
	if f.Validate() == nil {
		t.Error("frame with negative duration passed validation")
	}

	f = Frame{Type: Data, Src: 1, Dst: 2, PayloadBytes: -1}
	if f.Validate() == nil {
		t.Error("DATA with negative payload passed validation")
	}

	var zero Frame
	if zero.Validate() == nil {
		t.Error("zero frame passed validation")
	}

	for _, ty := range []Type{CTS, Ack} {
		f := Frame{Type: ty, Src: 1, Dst: 2, AssignedBackoff: 12}
		if err := f.Validate(); err != nil {
			t.Errorf("valid %v rejected: %v", ty, err)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		f    Frame
		want int
	}{
		{Frame{Type: RTS}, RTSBytes},
		{Frame{Type: CTS}, CTSBytes},
		{Frame{Type: Ack}, AckBytes},
		{Frame{Type: Data, PayloadBytes: 512}, 540},
		{Frame{Type: Data, PayloadBytes: 0}, DataOverhead},
	}
	for _, c := range cases {
		if got := c.f.Bytes(); got != c.want {
			t.Errorf("%v Bytes() = %d, want %d", c.f.Type, got, c.want)
		}
	}
}

func TestBytesPanicsOnInvalidType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes on invalid type did not panic")
		}
	}()
	_ = Frame{}.Bytes()
}

func TestAirtime(t *testing.T) {
	// 512-byte payload DATA at 2 Mbps: 540 B · 8 / 2 Mbps = 2160 µs,
	// plus 192 µs preamble.
	f := Frame{Type: Data, PayloadBytes: 512}
	if got, want := f.Airtime(2_000_000), 2352*sim.Microsecond; got != want {
		t.Errorf("DATA airtime = %v, want %v", got, want)
	}
	// RTS with the +1 attempt byte: 21 B · 8 / 2 Mbps = 84 µs + 192 µs.
	if got, want := (Frame{Type: RTS}).Airtime(2_000_000), 276*sim.Microsecond; got != want {
		t.Errorf("RTS airtime = %v, want %v", got, want)
	}
}

func TestAirtimeScalesWithRate(t *testing.T) {
	f := Frame{Type: Data, PayloadBytes: 1000}
	slow := f.Airtime(1_000_000)
	fast := f.Airtime(2_000_000)
	// MAC part halves; the preamble does not.
	macSlow := slow - PLCPPreamble
	macFast := fast - PLCPPreamble
	if macSlow != 2*macFast {
		t.Errorf("MAC airtime did not halve: %v vs %v", macSlow, macFast)
	}
}

func TestAirtimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Airtime with zero bit rate did not panic")
		}
	}()
	Airtime(10, 0)
}

func TestString(t *testing.T) {
	for _, f := range []Frame{
		validRTS(),
		{Type: CTS, Src: 2, Dst: 1, AssignedBackoff: 9},
		{Type: Data, Src: 1, Dst: 2, Seq: 3, PayloadBytes: 512},
		{Type: Ack, Src: 2, Dst: 1, AssignedBackoff: 4},
		{Type: Type(9), Src: 1, Dst: 2},
	} {
		if f.String() == "" {
			t.Errorf("empty String() for %+v", f)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	frames := []Frame{
		validRTS(),
		{Type: CTS, Src: 2, Dst: 1, AssignedBackoff: 31, Duration: sim.Millisecond},
		{Type: Data, Src: 1, Dst: 2, Seq: 99, PayloadBytes: 512, Duration: 400 * sim.Microsecond},
		{Type: Ack, Src: 2, Dst: 1, AssignedBackoff: 0},
		{Type: Data, Src: 1, Dst: 2, Seq: 100, PayloadBytes: 512, Corrupted: true},
		{Type: CTS, Src: 2, Dst: 1, AssignedBackoff: 7, Corrupted: true},
	}
	for _, f := range frames {
		got, err := Unmarshal(Marshal(f))
		if err != nil {
			t.Fatalf("roundtrip %v: %v", f, err)
		}
		if got != f {
			t.Errorf("roundtrip changed frame:\n got %+v\nwant %+v", got, f)
		}
	}
}

func TestCodecRejectsBadLength(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

func TestCodecRejectsInvalidFrame(t *testing.T) {
	f := validRTS()
	buf := Marshal(f)
	buf[0] = 0 // invalid type
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("invalid decoded frame accepted")
	}
}

func TestCodecRejectsUnknownFlags(t *testing.T) {
	buf := Marshal(validRTS())
	buf[len(buf)-1] |= 0x80 // a flag bit the codec does not define
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("unknown flag bits accepted; the wire form is no longer canonical")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(src, dst int16, seq uint32, attempt uint8, backoff int32, dur uint32, payload uint16) bool {
		if src == dst {
			return true
		}
		fr := Frame{
			Type:            Data,
			Src:             NodeID(src),
			Dst:             NodeID(dst),
			Seq:             seq,
			AssignedBackoff: backoff,
			Duration:        sim.Time(dur),
			PayloadBytes:    int(payload),
		}
		got, err := Unmarshal(Marshal(fr))
		return err == nil && got == fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAirtimeMonotonicInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return Airtime(x, 2_000_000) <= Airtime(y, 2_000_000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
