package faults

import (
	"math"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"fer", Config{FER: 0.3}, true},
		{"fer-one", Config{FER: 1}, true},
		{"fer-negative", Config{FER: -0.1}, false},
		{"fer-above-one", Config{FER: 1.1}, false},
		{"fer-nan", Config{FER: math.NaN()}, false},
		{"burst", Config{Burst: &GE{PGoodBad: 0.05, PBadGood: 0.25, BadFER: 1}}, true},
		{"burst-degenerate", Config{Burst: &GE{}}, true},
		{"burst-bad-p", Config{Burst: &GE{PGoodBad: 2}}, false},
		{"burst-bad-fer", Config{Burst: &GE{BadFER: -1}}, false},
		{"churn", Config{ChurnInterval: sim.Second, ChurnDowntime: sim.Millisecond}, true},
		{"churn-negative", Config{ChurnInterval: -sim.Second}, false},
		{"downtime-negative", Config{ChurnDowntime: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestGEMeanFER(t *testing.T) {
	g := GE{PGoodBad: 0.1, PBadGood: 0.4, GoodFER: 0, BadFER: 1}
	want := 0.1 / 0.5 // πB = p/(p+r)
	if got := g.MeanFER(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanFER = %v, want %v", got, want)
	}
	// A frozen chain stays in Good.
	frozen := GE{GoodFER: 0.07}
	if got := frozen.MeanFER(); got != 0.07 {
		t.Fatalf("frozen MeanFER = %v, want 0.07", got)
	}
}

func TestGEForMeanFER(t *testing.T) {
	for _, fer := range []float64{0, 0.05, 0.15, 0.3} {
		g := GEForMeanFER(fer, 0.25)
		if err := g.Validate(); err != nil {
			t.Fatalf("GEForMeanFER(%v): %v", fer, err)
		}
		if got := g.MeanFER(); math.Abs(got-fer) > 1e-12 {
			t.Fatalf("GEForMeanFER(%v).MeanFER() = %v", fer, got)
		}
	}
}

// TestInjectorDeterministic: identical (config, base) pairs produce
// identical decision sequences.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Burst: &GE{PGoodBad: 0.1, PBadGood: 0.3, BadFER: 0.9, GoodFER: 0.02}}
	a := NewInjector(cfg, 12345)
	b := NewInjector(cfg, 12345)
	for i := 0; i < 5000; i++ {
		tx, rx := frame.NodeID(i%7), frame.NodeID(7+i%3)
		if a.Drop(tx, rx) != b.Drop(tx, rx) {
			t.Fatalf("decision %d diverged", i)
		}
	}
	if a.Drops() != b.Drops() {
		t.Fatalf("drop counts diverged: %d vs %d", a.Drops(), b.Drops())
	}
}

// TestInjectorLinkIndependence: a link's decision sequence is unchanged
// by traffic on other links — the property that makes counter-RNG fault
// draws order-independent across interleavings.
func TestInjectorLinkIndependence(t *testing.T) {
	cfg := Config{Burst: &GE{PGoodBad: 0.2, PBadGood: 0.2, BadFER: 1}}
	alone := NewInjector(cfg, 99)
	var soloSeq []bool
	for i := 0; i < 1000; i++ {
		soloSeq = append(soloSeq, alone.Drop(1, 2))
	}
	mixed := NewInjector(cfg, 99)
	var mixedSeq []bool
	for i := 0; i < 1000; i++ {
		mixed.Drop(3, 4) // interleaved foreign traffic
		mixedSeq = append(mixedSeq, mixed.Drop(1, 2))
		mixed.Drop(2, 1) // reverse direction is a distinct link too
	}
	for i := range soloSeq {
		if soloSeq[i] != mixedSeq[i] {
			t.Fatalf("link 1→2 decision %d changed under interleaving", i)
		}
	}
}

// TestInjectorFixedRate: the i.i.d. model's empirical rate matches FER.
func TestInjectorFixedRate(t *testing.T) {
	const n = 200000
	in := NewInjector(Config{FER: 0.3}, 7)
	drops := 0
	for i := 0; i < n; i++ {
		if in.Drop(0, 1) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("empirical FER %v, want 0.3 ± 0.01", got)
	}
}

// TestInjectorBurstRateAndBurstiness: the GE chain hits its analytic
// mean rate, and its losses cluster (P(loss | previous loss) well above
// the marginal rate) — the defining property an i.i.d. model lacks.
func TestInjectorBurstRateAndBurstiness(t *testing.T) {
	const n = 300000
	g := GEForMeanFER(0.15, 0.25)
	in := NewInjector(Config{Burst: &g}, 11)
	drops, pairs, repeats := 0, 0, 0
	prev := false
	for i := 0; i < n; i++ {
		d := in.Drop(0, 1)
		if d {
			drops++
		}
		if prev {
			pairs++
			if d {
				repeats++
			}
		}
		prev = d
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.15) > 0.01 {
		t.Fatalf("empirical burst FER %v, want 0.15 ± 0.01", rate)
	}
	condRate := float64(repeats) / float64(pairs)
	// With PBadGood = 0.25 and BadFER = 1, P(loss | loss) = 0.75.
	if condRate < 0.5 {
		t.Fatalf("P(loss|loss) = %v: losses are not bursty", condRate)
	}
}

// TestInjectorZeroConfigNeverDrops: FER 0 with no chain drops nothing.
func TestInjectorZeroConfigNeverDrops(t *testing.T) {
	in := NewInjector(Config{}, 5)
	for i := 0; i < 1000; i++ {
		if in.Drop(0, 1) {
			t.Fatal("zero config dropped a frame")
		}
	}
}

// churnLog records crash/restart calls for schedule tests.
type churnLog struct {
	events []string
	times  []sim.Time
}

func (c *churnLog) Crash(now sim.Time) {
	c.events = append(c.events, "crash")
	c.times = append(c.times, now)
}

func (c *churnLog) Restart(now sim.Time) {
	c.events = append(c.events, "restart")
	c.times = append(c.times, now)
}

func TestScheduleChurn(t *testing.T) {
	cfg := Config{ChurnInterval: 100 * sim.Millisecond, ChurnDowntime: 20 * sim.Millisecond}
	var sched sim.Scheduler
	var log churnLog
	n := ScheduleChurn(&sched, rng.New(3), cfg, &log, sim.Second)
	if n == 0 {
		t.Fatal("no crashes scheduled over 10 mean intervals")
	}
	sched.Run(sim.Second)
	if len(log.events) == 0 {
		t.Fatal("no churn events fired")
	}
	// Events must alternate crash, restart, crash, ... in time order,
	// with each restart exactly ChurnDowntime after its crash.
	for i, ev := range log.events {
		want := "crash"
		if i%2 == 1 {
			want = "restart"
		}
		if ev != want {
			t.Fatalf("event %d = %s, want %s (%v)", i, ev, want, log.events)
		}
		if i > 0 && log.times[i] <= log.times[i-1] {
			t.Fatalf("event %d at %v not after %v", i, log.times[i], log.times[i-1])
		}
		if i%2 == 1 && log.times[i]-log.times[i-1] != cfg.ChurnDowntime {
			t.Fatalf("restart %d lag %v, want %v", i, log.times[i]-log.times[i-1], cfg.ChurnDowntime)
		}
	}

	// The schedule is deterministic: same seed, same events.
	var sched2 sim.Scheduler
	var log2 churnLog
	ScheduleChurn(&sched2, rng.New(3), cfg, &log2, sim.Second)
	sched2.Run(sim.Second)
	if len(log.events) != len(log2.events) {
		t.Fatalf("reruns differ: %d vs %d events", len(log.events), len(log2.events))
	}
	for i := range log.times {
		if log.times[i] != log2.times[i] {
			t.Fatalf("rerun event %d at %v, first run %v", i, log2.times[i], log.times[i])
		}
	}
}

func TestScheduleChurnDisabled(t *testing.T) {
	var sched sim.Scheduler
	var log churnLog
	if n := ScheduleChurn(&sched, rng.New(1), Config{}, &log, sim.Second); n != 0 {
		t.Fatalf("disabled churn scheduled %d crashes", n)
	}
	if sched.Pending() != 0 {
		t.Fatalf("disabled churn left %d events pending", sched.Pending())
	}
}
