package faults

import "dcfguard/internal/frame"

// ShardedInjector is the frame-error engine for sharded runs: one
// sub-injector per shard, selected by the *receiver's* shard. The
// medium consults Drop on the observer's completion event, which always
// executes on the observer's shard goroutine, so each sub-injector is
// only ever touched by one goroutine — no shared mutable state.
//
// Determinism: every (tx, rx) link lives in exactly one sub-injector
// (rx never moves shards), all sub-injectors share the run's base key,
// and a link's frame counter advances in the rx shard's keyed event
// order — which the sharded kernel guarantees equals the serial order.
// Per-link draw sequences are therefore bit-identical to a serial
// Injector with the same base, for any shard count (pinned by the
// sharded fault goldens in internal/experiment).
type ShardedInjector struct {
	shards  []*Injector
	shardOf func(rx frame.NodeID) int
}

// NewShardedInjector builds the per-shard engine. base is the same run
// fault key a serial Injector would get; shardOf maps a receiver to its
// shard index and must agree with the medium's ConfigureShards
// assignment.
func NewShardedInjector(cfg Config, base uint64, shards int, shardOf func(frame.NodeID) int) *ShardedInjector {
	if shards < 2 {
		panic("faults: NewShardedInjector needs at least 2 shards")
	}
	in := &ShardedInjector{shards: make([]*Injector, shards), shardOf: shardOf}
	for i := range in.shards {
		in.shards[i] = NewInjector(cfg, base)
	}
	return in
}

// Drop reports whether the channel destroys this frame on the tx→rx
// link. Called on rx's shard goroutine (the medium's completion event).
func (in *ShardedInjector) Drop(tx, rx frame.NodeID) bool {
	return in.shards[in.shardOf(rx)].Drop(tx, rx)
}

// Drops returns the cumulative frames destroyed across all shards.
// Coordinator-only: call between windows or after the run.
func (in *ShardedInjector) Drops() uint64 {
	var n uint64
	for _, sub := range in.shards {
		n += sub.Drops()
	}
	return n
}
