// Package faults injects channel and node failures into a simulation
// run, deterministically: frame-error models (a fixed frame-error rate
// and a two-state Gilbert–Elliott burst-loss chain) that drop frames the
// collision model would have delivered, and a node-churn scheduler that
// crashes and restarts receivers mid-run, wiping their monitoring state.
//
// The paper's detection scheme reads the channel itself as its sensor —
// the receiver's idle-slot count B_act — so imperfect channels (lost
// CTS/ACKs, miscounted slots) feed straight into the deviation estimate.
// This package exists to quantify that fragility: how fast does the
// false-diagnosis rate of *correct* senders grow with loss, and does the
// detection pipeline re-synchronise after a receiver loses its state?
//
// Determinism: every frame-error decision is a counter-RNG draw
// (rng.Mix64 / rng.CounterUniform) keyed by (run base, transmitter,
// observer) and a per-link frame counter, so decisions are a pure
// function of the run seed and are independent of the order in which
// other links' frames complete. Churn schedules are precomputed at
// setup from a dedicated sequential stream. Everything is off by
// default, and a disabled Injector consumes no draws, so existing v1/v2
// goldens are untouched.
package faults

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// GE parameterises a two-state Gilbert–Elliott burst-loss chain. The
// link sits in a Good or a Bad state; before each frame the state makes
// one Markov transition, then the frame is lost with the state's
// frame-error rate. Mean residence in Bad is PGoodBad/(PGoodBad+PBadGood)
// of the time, so the long-run loss rate is
//
//	FER = πG·GoodFER + πB·BadFER,  πB = PGoodBad/(PGoodBad+PBadGood).
//
// The classic Gilbert model is GoodFER=0, BadFER=1; intermediate values
// give the "soft" variant.
type GE struct {
	// PGoodBad is the per-frame probability of a Good→Bad transition.
	PGoodBad float64
	// PBadGood is the per-frame probability of a Bad→Good transition.
	PBadGood float64
	// GoodFER and BadFER are the frame-error rates inside each state.
	GoodFER float64
	BadFER  float64
}

// Validate reports whether every chain parameter is a probability.
// Degenerate chains (both transition probabilities zero, or an absorbing
// state) are allowed: they are well-defined, just not bursty.
func (g GE) Validate() error {
	for _, p := range [...]struct {
		name string
		v    float64
	}{
		{"PGoodBad", g.PGoodBad},
		{"PBadGood", g.PBadGood},
		{"GoodFER", g.GoodFER},
		{"BadFER", g.BadFER},
	} {
		// Negated form also rejects NaN.
		if !(p.v >= 0 && p.v <= 1) {
			return fmt.Errorf("faults: GE %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// MeanFER returns the chain's long-run frame-error rate. A chain that
// never transitions (PGoodBad+PBadGood == 0) stays in Good forever.
func (g GE) MeanFER() float64 {
	denom := g.PGoodBad + g.PBadGood
	if denom <= 0 {
		return g.GoodFER
	}
	piBad := g.PGoodBad / denom
	return (1-piBad)*g.GoodFER + piBad*g.BadFER
}

// GEForMeanFER returns the classic Gilbert chain (GoodFER=0, BadFER=1)
// whose long-run loss rate is fer, using the given Bad→Good recovery
// probability r (which sets the mean burst length 1/r). It panics unless
// fer ∈ [0, 1) and r ∈ (0, 1].
func GEForMeanFER(fer, r float64) GE {
	if !(fer >= 0 && fer < 1) || !(r > 0 && r <= 1) {
		panic(fmt.Sprintf("faults: GEForMeanFER(%v, %v)", fer, r))
	}
	// πB = p/(p+r) = fer  ⇒  p = fer·r/(1−fer).
	return GE{PGoodBad: fer * r / (1 - fer), PBadGood: r, BadFER: 1}
}

// Config selects the faults to inject into a run. The zero value
// disables everything.
type Config struct {
	// FER is the i.i.d. per-frame error rate applied to every frame
	// that survives collision resolution at an observer (0 disables).
	FER float64
	// Burst, when non-nil, replaces the fixed FER with a Gilbert–Elliott
	// chain evolved independently per (transmitter, observer) link.
	Burst *GE
	// ChurnInterval, when positive, crashes each monitored receiver
	// after exponentially distributed up-times with this mean. A crash
	// wipes the receiver's per-sender detection state (B_exp,
	// assignments, the diagnosis window) — the state a reboot loses.
	ChurnInterval sim.Time
	// ChurnDowntime is how long a crashed receiver stays down before
	// restarting (0 with churn enabled means restart at the next
	// instant).
	ChurnDowntime sim.Time
}

// ErrorsEnabled reports whether any frame-error model is active.
func (c Config) ErrorsEnabled() bool { return c.FER > 0 || c.Burst != nil }

// ChurnEnabled reports whether node churn is active.
func (c Config) ChurnEnabled() bool { return c.ChurnInterval > 0 }

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool { return c.ErrorsEnabled() || c.ChurnEnabled() }

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if !(c.FER >= 0 && c.FER <= 1) {
		return fmt.Errorf("faults: FER %v outside [0, 1]", c.FER)
	}
	if c.Burst != nil {
		if err := c.Burst.Validate(); err != nil {
			return err
		}
	}
	if c.ChurnInterval < 0 {
		return fmt.Errorf("faults: negative churn interval %v", c.ChurnInterval)
	}
	if c.ChurnDowntime < 0 {
		return fmt.Errorf("faults: negative churn downtime %v", c.ChurnDowntime)
	}
	return nil
}

// Injector is the per-run frame-error engine. It implements the
// medium's FrameFaults hook: Drop is consulted once per frame that
// survived collision resolution at an observer, and decides whether the
// channel destroyed it anyway.
//
// Draws are counter-based: each (transmitter, observer) link owns a key
// derived from the run base, and a frame counter that advances once per
// consulted frame. The chain state of one link therefore never depends
// on traffic elsewhere, and a run's decisions are reproducible whatever
// the interleaving of completions across links.
type Injector struct {
	cfg   Config
	base  uint64
	links map[linkKey]*linkState

	drops uint64
}

type linkKey struct {
	tx, rx frame.NodeID
}

type linkState struct {
	key uint64
	ctr uint64
	bad bool
}

// NewInjector builds an injector for one run. base is the run's fault
// key, normally one Uint64 from a dedicated stream of the run's root
// RNG; cfg must validate.
func NewInjector(cfg Config, base uint64) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("faults: %v", err))
	}
	return &Injector{cfg: cfg, base: base, links: make(map[linkKey]*linkState)}
}

func (in *Injector) link(tx, rx frame.NodeID) *linkState {
	k := linkKey{tx, rx}
	st, ok := in.links[k]
	if !ok {
		st = &linkState{key: rng.Mix64(rng.Mix64(in.base, uint64(tx)), uint64(rx))}
		in.links[k] = st
	}
	return st
}

// Drop reports whether the channel destroys this frame on the tx→rx
// link. Each call consumes the link's next frame counter; callers must
// consult it exactly once per surviving frame, in event order.
func (in *Injector) Drop(tx, rx frame.NodeID) bool {
	st := in.link(tx, rx)
	var drop bool
	if ge := in.cfg.Burst; ge != nil {
		// One Markov step, then the loss draw for the new state. Counters
		// 2k and 2k+1 keep the two draws independent.
		trans := rng.CounterUniform(st.key, 2*st.ctr)
		if st.bad {
			if trans < ge.PBadGood {
				st.bad = false
			}
		} else if trans < ge.PGoodBad {
			st.bad = true
		}
		fer := ge.GoodFER
		if st.bad {
			fer = ge.BadFER
		}
		drop = rng.CounterUniform(st.key, 2*st.ctr+1) < fer
	} else {
		drop = rng.CounterUniform(st.key, st.ctr) < in.cfg.FER
	}
	st.ctr++
	if drop {
		in.drops++
	}
	return drop
}

// Drops returns the cumulative number of frames destroyed by the
// injector.
func (in *Injector) Drops() uint64 { return in.drops }

// Restartable is a component that can lose its volatile state and come
// back: the churn scheduler's target. core.Monitor implements it.
type Restartable interface {
	// Crash takes the component down at now, discarding volatile state.
	Crash(now sim.Time)
	// Restart brings the component back up at now, empty-handed.
	Restart(now sim.Time)
}

// Churn events use the scheduler's allocation-free AtArg form.
func churnCrashEvent(arg any, when sim.Time) { arg.(Restartable).Crash(when) }

func churnRestartEvent(arg any, when sim.Time) { arg.(Restartable).Restart(when) }

// ScheduleChurn precomputes and arms one target's crash/restart cycle on
// the scheduler: up-times are exponentially distributed with mean
// cfg.ChurnInterval (drawn from src at setup, so the schedule is fixed
// before the run starts), downtimes are the constant cfg.ChurnDowntime.
// Cycles beyond until are not scheduled. It returns the number of
// crashes armed.
func ScheduleChurn(sched *sim.Scheduler, src *rng.Source, cfg Config, target Restartable, until sim.Time) int {
	if !cfg.ChurnEnabled() {
		return 0
	}
	crashes := 0
	t := sim.Time(0)
	for {
		up := sim.Time(src.ExpFloat64() * float64(cfg.ChurnInterval))
		if up < sim.Time(1) {
			up = sim.Time(1) // never crash at the previous event's instant
		}
		t += up
		if t >= until {
			return crashes
		}
		restart := t + cfg.ChurnDowntime
		sched.AtArg(t, churnCrashEvent, target)
		if restart < until {
			sched.AtArg(restart, churnRestartEvent, target)
		}
		crashes++
		t = restart
	}
}
