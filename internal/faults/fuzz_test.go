package faults

import (
	"math"
	"testing"
)

// FuzzGEValidate throws arbitrary parameter vectors at the
// Gilbert–Elliott validator: whatever Validate accepts must be safe to
// run — the chain's mean rate is a probability, and an Injector built
// on it neither panics nor produces out-of-contract decisions. This is
// the satellite fuzz target for degenerate chains (frozen, absorbing,
// certain-loss) as much as for out-of-range rejection.
func FuzzGEValidate(f *testing.F) {
	f.Add(0.05, 0.25, 0.0, 1.0)    // classic Gilbert
	f.Add(0.0, 0.0, 0.0, 0.0)      // frozen chain
	f.Add(1.0, 0.0, 0.0, 1.0)      // absorbing Bad state
	f.Add(0.0, 1.0, 1.0, 1.0)      // certain loss in both states
	f.Add(-0.1, 0.5, 0.0, 1.0)     // out of range
	f.Add(0.5, math.NaN(), 0.0, 0.5) // NaN
	f.Add(2.0, 0.5, 0.5, 1.5)      // above one

	f.Fuzz(func(t *testing.T, p, r, good, bad float64) {
		g := GE{PGoodBad: p, PBadGood: r, GoodFER: good, BadFER: bad}
		err := g.Validate()
		inRange := func(v float64) bool { return v >= 0 && v <= 1 }
		wantOK := inRange(p) && inRange(r) && inRange(good) && inRange(bad)
		if wantOK && err != nil {
			t.Fatalf("valid GE %+v rejected: %v", g, err)
		}
		if !wantOK && err == nil {
			t.Fatalf("invalid GE %+v accepted", g)
		}
		if err != nil {
			return
		}
		// Anything accepted must be runnable: a finite mean rate in
		// [0, 1] and a panic-free injector.
		if m := g.MeanFER(); !(m >= 0 && m <= 1) {
			t.Fatalf("accepted GE %+v has MeanFER %v", g, m)
		}
		in := NewInjector(Config{Burst: &g}, 42)
		for i := 0; i < 64; i++ {
			in.Drop(1, 2)
		}
		if in.Drops() > 64 {
			t.Fatalf("injector counted %d drops in 64 frames", in.Drops())
		}
	})
}
