package dcfguard_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dcfguard"
	"dcfguard/internal/experiment"
	"dcfguard/internal/serve"
)

// The serve overhead guard pins the daemon's dispatch tax: a
// RunRandom40V2 sweep submitted through internal/serve — spec decode,
// admission, fair scheduling, RunGuarded, journal + artifact writes —
// must keep its per-cell time within 5% of the raw kernel's BENCH.json
// ns_per_op. Same env gate and noisy-host estimator as the obs guard
// (overhead_guard_test.go): min(wall, process-CPU) per batch, minimum
// accumulated across batches with pauses between failing ones, the
// threshold stretched by hostSpeedScale. Run by `make serve`.

// serveGuardSpec is the serializable twin of BenchScenarioRandom40V2:
// the Figure-9 40-node random topology, 5 misbehaving senders at PM 80,
// channel model v2, 2 simulated seconds. TestServeGuardSpecMatchesBench
// pins the equivalence, so the guard really measures daemon overhead on
// the recorded workload rather than on a drifted cousin.
func serveGuardSpec() experiment.ScenarioSpec {
	return experiment.ScenarioSpec{
		Name:     "random-40-v2",
		Topo:     experiment.TopoSpec{Kind: "random", Nodes: 40, Mis: 5},
		PM:       80,
		Duration: "2s",
		Channel:  "v2",
	}
}

// TestServeGuardSpecMatchesBench proves the wire spec above materialises
// the same simulation as the in-process bench scenario: one seed, full
// Result equality. Runs ungated — it is a correctness pin, not a timing
// assertion, and it is what licenses comparing the daemon sweep against
// RunRandom40V2's baseline at all.
func TestServeGuardSpecMatchesBench(t *testing.T) {
	if testing.Short() {
		t.Skip("two 2s-simulated runs; skipped under -short")
	}
	s, err := serveGuardSpec().ToScenario()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	got, err := experiment.Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dcfguard.Run(dcfguard.BenchScenarioRandom40V2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spec-built scenario diverges from BenchScenarioRandom40V2:\n got %+v\nwant %+v", got, want)
	}
}

func TestServeOverheadGuard(t *testing.T) {
	if os.Getenv(overheadGuardEnv) == "" {
		t.Skipf("set %s=1 to run the daemon overhead guard (make serve)", overheadGuardEnv)
	}
	data, err := os.ReadFile("BENCH.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var bench struct {
		Results []struct {
			Name         string  `json:"name"`
			NsPerOp      int64   `json:"ns_per_op"`
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var baseline int64
	var hostRef float64
	for _, r := range bench.Results {
		switch r.Name {
		case "RunRandom40V2":
			baseline = r.NsPerOp
		case "HostReference":
			hostRef = r.EventsPerSec
		}
	}
	if baseline == 0 {
		t.Fatal("baseline: no RunRandom40V2 entry in BENCH.json")
	}

	// One worker, so the three cells run back-to-back and the job's
	// wall time is three sequential cells plus everything the daemon
	// adds around them (scheduling, journal fsyncs, artifacts).
	srv, err := serve.NewServer(serve.Options{
		DataDir: filepath.Join(t.TempDir(), "data"),
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	s, err := serveGuardSpec().ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{1, 2, 3}
	// minCost is one timed run of f, estimated as min(wall, CPU).
	minCost := func(f func() error) time.Duration {
		wall0, cpu0 := time.Now(), cpuNow()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		wall, cpu := time.Since(wall0), cpuNow()-cpu0
		if cpu > 0 && cpu < wall {
			return cpu
		}
		return wall
	}

	scale, refNow := hostSpeedScale(hostRef)
	scaledBaseline := time.Duration(float64(baseline) / scale)
	t.Logf("host reference: recorded %.0f, now %.0f, limit scale %.3f", hostRef, refNow, scale)

	// The guard pins the daemon's *overhead*, not the kernel's speed —
	// that is bench-guard's job. Each batch therefore re-times the raw
	// kernel in this same process and budgets 5% on top of the larger
	// of (recorded baseline, raw floor): host drift that the reference
	// probe misses (cache pressure, frequency windows) inflates both
	// measurements alike and must not read as daemon overhead, while a
	// kernel that somehow got faster does not shrink the daemon's
	// recorded budget below BENCH.json's.
	bestCell := time.Duration(1<<63 - 1)
	var pass bool
	var limit time.Duration
	for batch := 0; batch < 10 && !pass; batch++ {
		if batch > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		raw := time.Duration(1<<63 - 1)
		for _, seed := range seeds {
			seed := seed
			if d := minCost(func() error { _, err := experiment.Run(s, seed); return err }); d < raw {
				raw = d
			}
		}
		effective := scaledBaseline
		if raw > effective {
			effective = raw
		}
		limit = effective + effective/20

		// A fresh name each batch: resubmitting an identical spec is
		// idempotent, and a cached job would measure nothing.
		js := serve.JobSpec{
			Name:     fmt.Sprintf("serve-guard-%d", batch),
			Scenario: serveGuardSpec(),
			SeedList: seeds,
		}
		d := minCost(func() error {
			if _, err := srv.Submit(js); err != nil {
				return err
			}
			st, ok := srv.Wait(js.Name)
			if !ok || st.State != serve.StateDone {
				return fmt.Errorf("job ended %q (found %v): %v", st.State, ok, st.Failures)
			}
			return nil
		}) / time.Duration(len(seeds))
		if d < bestCell {
			bestCell = d
		}
		pass = bestCell <= limit
		t.Logf("batch %d: per-cell min %v, raw kernel %v, baseline %v, limit %v",
			batch+1, bestCell, raw, time.Duration(baseline), limit)
	}
	if !pass {
		t.Errorf("daemon-submitted RunRandom40V2 cell = %v exceeds %v (baseline %v + 5%%) — serve overhead is no longer in the noise",
			bestCell, limit, time.Duration(baseline))
	}
}
