#!/usr/bin/env bash
# serve-smoke.sh — the kill -9 contract, end to end, on the real binary.
#
# The in-process tests (internal/serve) prove restart-resume with a
# forged crash state; this script proves it with an actual SIGKILL:
#
#   1. run a reference sweep on daemon A, uninterrupted;
#   2. submit the same sweep to daemon B, SIGKILL it mid-run (some
#      cells journaled, some mid-flight, possibly a torn temp file);
#   3. restart daemon B over the same data directory, wait for done;
#   4. assert B's artifacts are byte-for-byte identical to A's and
#      that at least one cell was resumed from the journal;
#   5. smoke the macsim -submit -follow client (SSE stream) against the
#      survivor and scrape /metrics (Prometheus text; exported to
#      $SERVE_SMOKE_METRICS_OUT when set, for the CI artifact).
#
# Run by `make serve` and the CI serve step. Needs only curl + coreutils.
set -euo pipefail

cd "$(dirname "$0")/.."

port=${SERVE_SMOKE_PORT:-8457}
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

say() { echo "serve-smoke: $*"; }
die() { say "FAIL: $*" >&2; exit 1; }

go build -o "$tmp/dcfserved" ./cmd/dcfserved
go build -o "$tmp/macsim" ./cmd/macsim

base="http://127.0.0.1:$port"

# start <datadir> — launch the daemon and wait for /healthz.
start() {
	"$tmp/dcfserved" -addr "127.0.0.1:$port" -data "$1" -workers 1 \
		>>"$tmp/daemon.log" 2>&1 &
	pid=$!
	for _ in $(seq 1 100); do
		curl -fsS "$base/healthz" >/dev/null 2>&1 && return 0
		kill -0 "$pid" 2>/dev/null || die "daemon exited at startup (see $tmp/daemon.log)"
		sleep 0.05
	done
	die "daemon never became healthy"
}

# stop — graceful SIGTERM drain, so daemon A journals everything.
stop() {
	kill -TERM "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	pid=""
}

# field <name> — extract a numeric/string JSON field from stdin. The
# status document is indented one-field-per-line, so a line-anchored sed
# stays honest without needing jq on the CI image.
field() { sed -n 's/.*"'"$1"'": *"\{0,1\}\([a-z0-9-]*\)"\{0,1\},\{0,1\}$/\1/p' | head -1; }

status() { curl -fsS "$base/jobs/smoke"; }

# 24 serial cells of the Figure-9 random topology: long enough that a
# SIGKILL a few cells in is always mid-run, short enough for CI.
spec='{"name":"smoke","scenario":{"name":"random-40-v2","topo":{"kind":"random","nodes":40,"mis":5},"pm":80,"duration":"2s","channel":"v2"},"seeds":24}'

submit() {
	code=$(curl -s -o "$tmp/submit.json" -w '%{http_code}' \
		-X POST -H 'Content-Type: application/json' -d "$spec" "$base/jobs")
	[ "$code" = 202 ] || die "submit returned HTTP $code: $(cat "$tmp/submit.json")"
}

wait_done() {
	for _ in $(seq 1 600); do
		state=$(status | field state)
		case "$state" in
		done) return 0 ;;
		failed | degraded) die "job ended $state" ;;
		esac
		sleep 0.1
	done
	die "job never finished"
}

say "reference run (uninterrupted)"
start "$tmp/ref"
submit
wait_done
stop

say "crash run: SIGKILL mid-sweep"
start "$tmp/crash"
submit
killed_at=-1
for _ in $(seq 1 600); do
	done_cells=$(status | field done)
	if [ "${done_cells:-0}" -ge 2 ]; then
		killed_at=$done_cells
		break
	fi
	sleep 0.02
done
[ "$killed_at" -ge 0 ] || die "job never reached 2 done cells"
[ "$killed_at" -lt 24 ] || die "job already complete at kill time (workload too short)"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
say "killed daemon at $killed_at/24 cells"

say "restart over the same data dir"
start "$tmp/crash"
wait_done
resumed=$(status | field resumed)
[ "${resumed:-0}" -ge 1 ] || die "restart re-ran everything (resumed=$resumed); journal resume is broken"
say "recovered: $resumed cells resumed from the journal"

say "byte-compare artifacts"
for f in aggregate.json results.csv results.json; do
	cmp "$tmp/ref/jobs/smoke/artifacts/$f" "$tmp/crash/jobs/smoke/artifacts/$f" ||
		die "artifact $f differs after kill -9 + restart"
done

say "macsim -submit -follow client smoke (SSE stream)"
"$tmp/macsim" -submit "$base" -job client-smoke -random 40 -mis 5 -pm 80 \
	-duration 2s -csv "$tmp/client.csv" -follow >/dev/null 2>"$tmp/follow.log"
[ -s "$tmp/client.csv" ] || die "client downloaded an empty results.csv"
grep -q '^state: done' "$tmp/follow.log" || die "-follow never streamed the terminal state event"
grep -q '^cell ' "$tmp/follow.log" || die "-follow streamed no cell events"

say "scrape /metrics (Prometheus exposition)"
curl -fsS "$base/metrics" >"$tmp/metrics.prom" || die "/metrics scrape failed"
grep -q '^# TYPE dcf_serve_jobs_submitted_total counter' "$tmp/metrics.prom" ||
	die "/metrics is not Prometheus text (no dcf_serve_ TYPE line)"
grep -q '^dcf_serve_cells_run_total ' "$tmp/metrics.prom" ||
	die "/metrics lost the cells_run counter"
if [ -n "${SERVE_SMOKE_METRICS_OUT:-}" ]; then
	cp "$tmp/metrics.prom" "$SERVE_SMOKE_METRICS_OUT"
	say "metrics snapshot saved to $SERVE_SMOKE_METRICS_OUT"
fi

stop
say "OK: kill -9 mid-sweep, restart, byte-identical artifacts ($resumed resumed)"
