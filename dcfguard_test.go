package dcfguard

import "testing"

// These tests exercise the public façade end to end; detailed behaviour
// is covered by the internal packages' suites.

func TestPublicRun(t *testing.T) {
	s := DefaultScenario()
	s.Duration = 3 * Second
	s.PM = 80
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalKbps <= 0 {
		t.Fatalf("TotalKbps = %v", r.TotalKbps)
	}
	if r.CorrectDiagnosisPct < 50 {
		t.Fatalf("correct diagnosis = %v%% at PM=80", r.CorrectDiagnosisPct)
	}
}

func TestPublicRunSeeds(t *testing.T) {
	s := DefaultScenario()
	s.Duration = 2 * Second
	s.Protocol = Protocol80211
	agg, err := RunSeeds(s, Seeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 2 || agg.TotalKbps.Mean <= 0 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestPublicTopologies(t *testing.T) {
	star := StarTopo(4, true, 2)(1)
	if err := star.Validate(); err != nil {
		t.Fatal(err)
	}
	random := RandomTopo(10, 2)(1)
	if err := random.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFigureSmoke(t *testing.T) {
	cfg := QuickConfig()
	cfg.Duration = 2 * Second
	cfg.Seeds = Seeds(1)
	cfg.PMs = []int{80}
	cfg.NetworkSizes = []int{2}
	cfg.Fig8PMs = []int{80}
	tb, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || tb.Render() == "" || tb.CSV() == "" {
		t.Fatalf("figure table malformed: %+v", tb)
	}
}

func TestPublicConstantsDistinct(t *testing.T) {
	if Protocol80211 == ProtocolCorrect {
		t.Fatal("protocol constants collide")
	}
	strategies := []Strategy{StrategyPartial, StrategyQuarterWindow, StrategyNoDoubling, StrategyAttemptLiar}
	seen := make(map[Strategy]bool)
	for _, s := range strategies {
		if seen[s] {
			t.Fatalf("duplicate strategy %v", s)
		}
		seen[s] = true
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("time constants inconsistent")
	}
}
