// Package dcfguard is a discrete-event reproduction of "Detection and
// Handling of MAC Layer Misbehavior in Wireless Networks" (Kyasanur &
// Vaidya, DSN 2003).
//
// It provides, built from scratch on the Go standard library:
//
//   - a slot-accurate IEEE 802.11 DCF simulator (CSMA/CA, RTS/CTS/DATA/
//     ACK, NAV, contention-window doubling) over a log-normal shadowing
//     channel calibrated exactly as in the paper (50% reception at
//     250 m, 50% carrier sense at 550 m, β = 2, σ = 1 dB);
//   - the paper's receiver-assigned backoff protocol: deviation
//     detection (α), the correction scheme (deviation-proportional
//     penalties) and the diagnosis scheme (window W, threshold THRESH),
//     plus the §4.4 extensions (attempt-number verification and
//     greedy-receiver detection via the public function g);
//   - the misbehavior models the paper studies (percentage-of-
//     misbehavior backoff shaving, [0, CW/4] selection, CW non-doubling,
//     attempt-number lying);
//   - every evaluation scenario from §5 (Figures 4-9) and the ablations
//     catalogued in DESIGN.md.
//
// # Quick start
//
//	s := dcfguard.DefaultScenario()
//	s.Protocol = dcfguard.ProtocolCorrect
//	s.PM = 80 // the misbehaving sender counts only 20% of each backoff
//	r, err := dcfguard.Run(s, 1)
//	// r.AvgMisbehaverKbps, r.CorrectDiagnosisPct, ...
//
// Multi-seed aggregates (the paper averages 30 runs):
//
//	agg, err := dcfguard.RunSeeds(s, dcfguard.Seeds(30))
//
// Paper figures:
//
//	table, err := dcfguard.Fig4(dcfguard.DefaultConfig())
//	fmt.Print(table.Render())
//
// Runs are pure functions of (Scenario, seed): identical inputs yield
// identical outputs on every platform.
package dcfguard

import (
	"time"

	"dcfguard/internal/core"
	"dcfguard/internal/experiment"
	"dcfguard/internal/faults"
	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/obs"
	"dcfguard/internal/phys"
	"dcfguard/internal/sim"
	"dcfguard/internal/stats"
	"dcfguard/internal/topo"
	"dcfguard/internal/trace"
)

// Re-exported simulation and scenario types. The aliases give external
// importers a stable public API over the internal packages.
type (
	// Scenario describes one simulation configuration.
	Scenario = experiment.Scenario
	// Result holds one run's metrics.
	Result = experiment.Result
	// Aggregate holds multi-seed summaries.
	Aggregate = experiment.Aggregate
	// Config scales the per-figure generators.
	Config = experiment.Config
	// Table is a rendered experiment result.
	Table = experiment.Table
	// Report combines tables into a markdown document.
	Report = experiment.Report
	// Protocol selects the MAC variant (802.11 or CORRECT).
	Protocol = experiment.Protocol
	// Strategy selects the misbehavior model.
	Strategy = experiment.Strategy
	// WindowPoint is one (W, THRESH) diagnosis configuration.
	WindowPoint = experiment.WindowPoint
	// ChannelModel selects the medium's channel implementation.
	ChannelModel = experiment.ChannelModel

	// FaultConfig selects channel-error and node-churn fault injection
	// (see Scenario.Faults); the zero value disables everything.
	FaultConfig = faults.Config
	// GE parameterises the Gilbert–Elliott burst-loss chain.
	GE = faults.GE
	// SeedFailure describes a (scenario, seed) run that panicked, timed
	// out or failed during setup.
	SeedFailure = experiment.SeedFailure
	// SweepCell is one (scenario, seed) unit of a resumable sweep.
	SweepCell = experiment.SweepCell
	// SweepOptions configures RunSweep (journal dir, watchdog, workers).
	SweepOptions = experiment.SweepOptions
	// SweepReport is RunSweep's outcome: results, failures, resume stats.
	SweepReport = experiment.SweepReport
	// SweepProgress publishes live sweep counters (see SweepOptions.Progress).
	SweepProgress = experiment.SweepProgress
	// SweepSnapshot is one read of a SweepProgress.
	SweepSnapshot = experiment.SweepSnapshot

	// ObsConfig configures the observability layer (see Scenario.Observe);
	// nil disables everything and observability is always pass-through.
	ObsConfig = obs.Config
	// ObsRegistry is the sim-time metrics registry (counters, gauges,
	// fixed-bucket histograms keyed by scope/node/name).
	ObsRegistry = obs.Registry
	// ObsSnapshot is a deterministic, sorted registry snapshot.
	ObsSnapshot = obs.Snapshot
	// ObsCategorySet selects decision-trace categories.
	ObsCategorySet = obs.CategorySet
	// ObsRecord is one structured decision-trace event.
	ObsRecord = obs.Record
	// ObsRef is a causal reference between trace records (see
	// ObsRecord.Self and ObsRecord.Parent).
	ObsRef = obs.Ref
	// ObsExplanation is one diagnosis decision with its reconstructed
	// evidence chain (see ObsExplain).
	ObsExplanation = obs.Explanation
	// ObsEvidenceStep is one window update inside an ObsExplanation,
	// with the deviation and assignment records it resolves to.
	ObsEvidenceStep = obs.EvidenceStep
	// ObsCaptureSink buffers trace records in memory for post-run
	// analysis such as ObsExplain.
	ObsCaptureSink = obs.CaptureSink
	// ObsSink receives decision-trace records.
	ObsSink = obs.Sink
	// ObsJSONL writes trace records as JSON lines (atomic on Close).
	ObsJSONL = obs.JSONLSink
	// ObsDiagnosisCSV collects the diagnosis trail as CSV.
	ObsDiagnosisCSV = obs.DiagnosisCSV
	// ObsDebugServer is the live introspection HTTP endpoint.
	ObsDebugServer = obs.DebugServer

	// NodeID identifies a node.
	NodeID = frame.NodeID
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Topology is a set of positioned nodes and flows.
	Topology = topo.Topology
	// Flow is one traffic flow within a Topology.
	Flow = topo.Flow
	// Point is a node position in metres.
	Point = phys.Point
	// CoreParams configures detection, correction and diagnosis.
	CoreParams = core.Params
	// MACParams configures 802.11 DCF timing and contention.
	MACParams = mac.Params
	// Shadowing is the log-normal propagation model.
	Shadowing = phys.Shadowing
	// Summary is a mean/stddev/CI95 snapshot of one metric.
	Summary = stats.Summary
	// SeriesPoint is one diagnosis time-series bin.
	SeriesPoint = stats.SeriesPoint
	// Trace is a frame-level timeline recorder (see Scenario.TraceEvents).
	Trace = trace.Recorder
)

// Protocol and strategy constants.
const (
	Protocol80211   = experiment.Protocol80211
	ProtocolCorrect = experiment.ProtocolCorrect

	StrategyPartial       = experiment.StrategyPartial
	StrategyQuarterWindow = experiment.StrategyQuarterWindow
	StrategyNoDoubling    = experiment.StrategyNoDoubling
	StrategyAttemptLiar   = experiment.StrategyAttemptLiar
)

// Channel model constants: v1 is the original sequential-stream channel
// (the default), v2 the counter-RNG + spatial-index channel for large
// topologies, v3 the propagation-delay channel required for sharded
// runs (Scenario.Shards > 1).
const (
	ChannelV1 = experiment.ChannelV1
	ChannelV2 = experiment.ChannelV2
	ChannelV3 = experiment.ChannelV3
)

// Simulated-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Decision-trace categories (combine with ObsCategorySet.Set, or parse a
// comma list with ParseObsCategories).
const (
	ObsCatMACState  = obs.CatMACState
	ObsCatBackoff   = obs.CatBackoff
	ObsCatDeviation = obs.CatDeviation
	ObsCatDiagnosis = obs.CatDiagnosis
	ObsCatChannel   = obs.CatChannel
)

// ObsNoNode marks a record field or registry key that refers to no
// particular node; passed to ObsExplain it selects every node's
// decisions.
const ObsNoNode = obs.NoNode

// NewObsRegistry returns an empty metrics registry; one registry may be
// shared across concurrent sweep cells (all updates are atomic).
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ParseObsCategories parses a comma-separated category list ("mac,
// backoff,deviation,diagnosis,channel" or "all") into a CategorySet.
func ParseObsCategories(spec string) (ObsCategorySet, error) { return obs.ParseCategories(spec) }

// ObsAllCategories returns the set containing every trace category.
func ObsAllCategories() ObsCategorySet { return obs.AllCategories() }

// NewObsJSONL returns a trace sink writing JSON lines to path on Close.
func NewObsJSONL(path string) *ObsJSONL { return obs.NewJSONLSink(path) }

// NewObsDiagnosisCSV returns a sink collecting diagnosis-trail records
// as CSV rows (written to path atomically on Close).
func NewObsDiagnosisCSV(path string) *ObsDiagnosisCSV { return obs.NewDiagnosisCSV(path) }

// NewObsDebugServer returns an unstarted live-introspection HTTP server
// (pprof, /debug/metrics, /debug/sweep).
func NewObsDebugServer() *ObsDebugServer { return obs.NewDebugServer() }

// NewObsCaptureSink returns a sink that buffers every record in memory,
// in emission order, for post-run analysis.
func NewObsCaptureSink() *ObsCaptureSink { return obs.NewCaptureSink() }

// ObsExplain walks the causal references in a trace capture and returns
// the evidence chain behind every diagnosis decision about node
// (ObsNoNode: every node), in emission order.
func ObsExplain(recs []ObsRecord, node NodeID) []ObsExplanation { return obs.Explain(recs, node) }

// DefaultScenario returns the paper's base configuration: the Figure-3
// ZERO-FLOW star with 8 senders, node 3 misbehaving, 50 s runs.
func DefaultScenario() Scenario { return experiment.DefaultScenario() }

// DefaultConfig returns the paper's full evaluation settings (50 s runs,
// 30 seeds per data point).
func DefaultConfig() Config { return experiment.DefaultConfig() }

// QuickConfig returns a reduced configuration for smoke runs and benches.
func QuickConfig() Config { return experiment.QuickConfig() }

// Run executes a scenario once; it is a pure function of (s, seed).
func Run(s Scenario, seed uint64) (Result, error) { return experiment.Run(s, seed) }

// RunSeeds executes a scenario once per seed (in parallel) and
// aggregates the results.
func RunSeeds(s Scenario, seeds []uint64) (Aggregate, error) {
	return experiment.RunSeeds(s, seeds)
}

// Seeds returns the fixed seed set 1..n, as the paper uses for every
// data point.
func Seeds(n int) []uint64 { return experiment.Seeds(n) }

// RunAll executes the scenario once per seed and returns the raw
// per-run results for external analysis.
func RunAll(s Scenario, seeds []uint64) ([]Result, error) { return experiment.RunAll(s, seeds) }

// ResultsCSV renders raw per-run results as CSV.
func ResultsCSV(results []Result) string { return experiment.ResultsCSV(results) }

// PerSenderCSV renders the per-flow throughput breakdown as CSV.
func PerSenderCSV(results []Result) string { return experiment.PerSenderCSV(results) }

// StarTopo builds the Figure-3 star topology (optionally with the
// TWO-FLOW interferers) with the given misbehaving sender IDs.
func StarTopo(nSenders int, twoFlow bool, misbehaving ...int) func(uint64) *Topology {
	return experiment.StarTopo(nSenders, twoFlow, misbehaving...)
}

// RandomTopo builds Figure-9 random topologies (regenerated per seed).
func RandomTopo(nodes, nMis int) func(uint64) *Topology {
	return experiment.RandomTopo(nodes, nMis)
}

// ScaledRandomTopo builds large random topologies at the Figure-9 node
// density (the arena widens with the node count).
func ScaledRandomTopo(nodes, nMis int) func(uint64) *Topology {
	return experiment.ScaledRandomTopo(nodes, nMis)
}

// Fig4 reproduces diagnosis accuracy vs PM (Figure 4).
func Fig4(cfg Config) (*Table, error) { return experiment.Fig4(cfg) }

// Fig5 reproduces throughput under misbehavior (Figure 5).
func Fig5(cfg Config) (*Table, error) { return experiment.Fig5(cfg) }

// Fig5WithDelay runs the Figure-5 sweep once and also returns the
// per-packet delay extension table.
func Fig5WithDelay(cfg Config) (*Table, *Table, error) { return experiment.Fig5WithDelay(cfg) }

// Fig6 reproduces throughput without misbehavior (Figure 6).
func Fig6(cfg Config) (*Table, error) { return experiment.Fig6(cfg) }

// Fig7 reproduces the fairness comparison (Figure 7).
func Fig7(cfg Config) (*Table, error) { return experiment.Fig7(cfg) }

// Fig6And7 runs the shared no-misbehavior sweep once and returns both
// the Figure-6 and Figure-7 tables.
func Fig6And7(cfg Config) (*Table, *Table, error) { return experiment.Fig6And7(cfg) }

// Fig8 reproduces diagnosis responsiveness over time (Figure 8).
func Fig8(cfg Config) (*Table, error) { return experiment.Fig8(cfg) }

// Fig9 reproduces the random-topology evaluation (Figure 9).
func Fig9(cfg Config) (*Table, error) { return experiment.Fig9(cfg) }

// AblationPenaltyFactor sweeps the correction penalty multiplier (A1).
func AblationPenaltyFactor(cfg Config, factors []float64) (*Table, error) {
	return experiment.AblationPenaltyFactor(cfg, factors)
}

// AblationAlpha sweeps the deviation tolerance α (A2).
func AblationAlpha(cfg Config, alphas []float64) (*Table, error) {
	return experiment.AblationAlpha(cfg, alphas)
}

// AblationWindow sweeps the diagnosis (W, THRESH) parameters (A3).
func AblationWindow(cfg Config, points []WindowPoint) (*Table, error) {
	return experiment.AblationWindow(cfg, points)
}

// AblationAttemptVerification evaluates §4.1's intentional drops (A4).
func AblationAttemptVerification(cfg Config) (*Table, error) {
	return experiment.AblationAttemptVerification(cfg)
}

// AblationReceiverMisbehavior evaluates §4.4's greedy receiver (A5).
func AblationReceiverMisbehavior(cfg Config) (*Table, error) {
	return experiment.AblationReceiverMisbehavior(cfg)
}

// AblationAdaptiveThresh evaluates the adaptive THRESH extension (A6).
func AblationAdaptiveThresh(cfg Config) (*Table, error) {
	return experiment.AblationAdaptiveThresh(cfg)
}

// AblationBasicAccess evaluates the scheme without RTS/CTS (A7).
func AblationBasicAccess(cfg Config) (*Table, error) {
	return experiment.AblationBasicAccess(cfg)
}

// ExtHiddenTerminal contrasts basic access and RTS/CTS under hidden
// terminals (extension experiment).
func ExtHiddenTerminal(cfg Config) (*Table, error) {
	return experiment.ExtHiddenTerminal(cfg)
}

// GEForMeanFER returns the classic Gilbert burst chain whose long-run
// loss rate is fer, with Bad→Good recovery probability r (mean burst
// length 1/r frames).
func GEForMeanFER(fer, r float64) GE { return faults.GEForMeanFER(fer, r) }

// RunGuarded executes a scenario like Run but recovers panics and, when
// timeout > 0, cancels runs that exceed the wall-time budget; failures
// come back as a *SeedFailure with a diagnostic dump.
func RunGuarded(s Scenario, seed uint64, timeout time.Duration) (Result, error) {
	return experiment.RunGuarded(s, seed, timeout)
}

// RunSweep executes (scenario, seed) cells across a worker pool with
// per-cell panic/timeout isolation and, when a journal directory is
// given, crash-safe checkpoint/resume: rerunning an interrupted sweep
// loads finished cells from the journal and executes only the rest.
func RunSweep(cells []SweepCell, opts SweepOptions) (SweepReport, error) {
	return experiment.RunSweep(cells, opts)
}

// AggregateResults folds raw per-seed results (e.g. loaded from a sweep
// journal) into the multi-seed Aggregate RunSeeds computes.
func AggregateResults(name string, results []Result) Aggregate {
	return experiment.AggregateResults(name, results)
}

// ExtFaultTolerance measures the false-diagnosis rate of correct senders
// as the frame-error rate sweeps 0-30% (i.i.d. and bursty losses), run
// as a resumable sweep; the report carries per-cell failures, if any.
func ExtFaultTolerance(cfg Config, opts SweepOptions) (*Table, *SweepReport, error) {
	return experiment.ExtFaultTolerance(cfg, opts)
}
