package dcfguard

import (
	"testing"
)

// The benchmarks exercise the exact code paths that regenerate each
// paper figure, at reduced scale (short runs, few seeds) so `go test
// -bench=.` completes in minutes. cmd/figures runs the full-scale
// versions and writes the tables recorded in EXPERIMENTS.md.
//
// Reported custom metrics: sim_s/op is simulated seconds per wall
// iteration's scenario-run; events/op the kernel events executed.

// benchConfig is the per-iteration figure configuration, shared with
// the `macsim bench` subcommand via BenchFigConfig.
func benchConfig() Config { return BenchFigConfig() }

// benchScenario runs one scenario per iteration and reports kernel
// throughput, for benches that measure a single simulation.
func benchScenario(b *testing.B, s Scenario) {
	b.Helper()
	var events uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(s, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		events += r.EventsFired
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(s.Duration.Seconds(), "sim_s/op")
}

// BenchmarkFig4DiagnosisAccuracy regenerates Figure 4 (diagnosis
// accuracy vs PM, ZERO-FLOW and TWO-FLOW).
func BenchmarkFig4DiagnosisAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Throughput regenerates Figure 5 (MSB/AVG throughput,
// 802.11 vs CORRECT).
func BenchmarkFig5Throughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6NoMisbehavior regenerates Figure 6 (and, sharing the
// sweep, Figure 7's data) for honest networks of varying size.
func BenchmarkFig6NoMisbehavior(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fig6And7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Fairness regenerates Figure 7 via the shared sweep.
func BenchmarkFig7Fairness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Responsiveness regenerates Figure 8 (per-second
// diagnosis series).
func BenchmarkFig8Responsiveness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9RandomTopology regenerates Figure 9 (random topologies).
func BenchmarkFig9RandomTopology(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{80}
	for i := 0; i < b.N; i++ {
		if _, err := Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPenaltyFactor regenerates ablation A1.
func BenchmarkAblationPenaltyFactor(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{80}
	for i := 0; i < b.N; i++ {
		if _, err := AblationPenaltyFactor(cfg, []float64{1.0, 1.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlpha regenerates ablation A2.
func BenchmarkAblationAlpha(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{50}
	for i := 0; i < b.N; i++ {
		if _, err := AblationAlpha(cfg, []float64{0.7, 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindow regenerates ablation A3.
func BenchmarkAblationWindow(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{50}
	points := []WindowPoint{{W: 5, Thresh: 20}, {W: 10, Thresh: 40}}
	for i := 0; i < b.N; i++ {
		if _, err := AblationWindow(cfg, points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAttemptVerification regenerates ablation A4.
func BenchmarkAblationAttemptVerification(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{80}
	for i := 0; i < b.N; i++ {
		if _, err := AblationAttemptVerification(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReceiverMisbehavior regenerates ablation A5.
func BenchmarkAblationReceiverMisbehavior(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := AblationReceiverMisbehavior(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptiveThresh regenerates ablation A6.
func BenchmarkAblationAdaptiveThresh(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{50}
	for i := 0; i < b.N; i++ {
		if _, err := AblationAdaptiveThresh(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBasicAccess regenerates ablation A7.
func BenchmarkAblationBasicAccess(b *testing.B) {
	cfg := benchConfig()
	cfg.PMs = []int{80}
	for i := 0; i < b.N; i++ {
		if _, err := AblationBasicAccess(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRun80211Star measures raw kernel throughput on the baseline
// 8-sender star (802.11).
func BenchmarkRun80211Star(b *testing.B) {
	benchScenario(b, BenchScenario80211Star())
}

// BenchmarkRunCorrectStar measures kernel throughput with the full
// monitor pipeline active.
func BenchmarkRunCorrectStar(b *testing.B) {
	benchScenario(b, BenchScenarioCorrectStar())
}

// BenchmarkRunRandom40 measures kernel throughput on the Figure-9
// 40-node random topology.
func BenchmarkRunRandom40(b *testing.B) {
	benchScenario(b, BenchScenarioRandom40())
}

// BenchmarkRunRandom40V2 is RunRandom40 under channel model v2 — it
// bounds the v2 overhead at paper scale.
func BenchmarkRunRandom40V2(b *testing.B) {
	benchScenario(b, BenchScenarioRandom40V2())
}

// BenchmarkRunRandom200 measures v2 scaling at 200 nodes (constant
// Figure-9 density).
func BenchmarkRunRandom200(b *testing.B) {
	benchScenario(b, BenchScenarioRandom200())
}

// BenchmarkRunRandom400 measures v2 scaling at 400 nodes.
func BenchmarkRunRandom400(b *testing.B) {
	benchScenario(b, BenchScenarioRandom400())
}

// BenchmarkRunRandom400V1 is the v1 baseline for the 400-node workload;
// the RunRandom400 / RunRandom400V1 ratio is the v2 speedup.
func BenchmarkRunRandom400V1(b *testing.B) {
	benchScenario(b, BenchScenarioRandom400V1())
}
